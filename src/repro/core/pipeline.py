"""The staged checkpoint-image pipeline.

The write path used to be a monolith: :func:`repro.core.codec.encode`
produced one opaque buffer that the Agent handed to the SAN or a stream.
This module turns it into a *pipeline*: the codec's payload bytes flow
through an ordered chain of :class:`ImageFilter` stages before reaching a
:class:`Sink`, with every stage charging its own simulated cost (CPU for
filter work through the node cost model, bandwidth for I/O through the
SAN/fabric models).  The pipeline is the seam later checkpoint systems
ship by default — DMTCP gzips images in flight; incremental checkpoints
write only dirty state — without giving up the intermediate format's
portability: a filtered image is a self-describing v2 envelope recording
the exact chain needed to reverse it.

Two production filters prove the seam:

* :class:`CompressFilter` — zlib compression of the materialized payload
  (real ``zlib``, so round-trips are bit-exact) plus a modeled
  compression ratio for the accounted (non-materialized) resident-set
  bytes, charged at a level-dependent CPU bandwidth;
* :class:`DeltaFilter` — incremental checkpointing: a block-level diff of
  the payload against the previous epoch's payload, plus a per-process
  dirty-page model for accounted memory, so periodic checkpoints after
  epoch 0 write only dirty state.  Restart reassembles the chain
  (epoch-0 full image + the deltas) in order.

An empty filter chain is the default everywhere and is byte-identical to
the pre-pipeline write path: no envelope, no extra cost terms.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CheckpointError, CodecError, RestartError
from . import codec
from .image import (
    FORMAT_VERSION,
    PIPELINE_FORMAT_VERSION,
    PodImage,
    build_payload,
    pack_pod_image,
)
from .standalone import accounted_memory_bytes, proc_memory_tables

# ---------------------------------------------------------------------------
# cost-model constants (simulated seconds; see DESIGN.md "cost model")
# ---------------------------------------------------------------------------

#: zlib compression throughput at level 1, bytes/second (CPU-bound).
COMPRESS_BW_BASE = 160e6
#: throughput lost per compression level above 1, bytes/second.
COMPRESS_BW_SLOPE = 11e6
#: zlib decompression throughput, bytes/second (much cheaper than compress).
DECOMPRESS_BW = 400e6
#: block-compare scan rate for the delta filter, bytes/second (memory-bound:
#: the incremental pass reads both the new and the previous image once).
DELTA_SCAN_BW = 3e9
#: modeled compression ratio of accounted application memory: the fraction
#: of the resident set remaining after zlib at level 1; each level above
#: shaves a little more, floored — numeric/scientific working sets do not
#: compress like text.
ACCOUNTED_RATIO_BASE = 0.57
ACCOUNTED_RATIO_SLOPE = 0.02
ACCOUNTED_RATIO_FLOOR = 0.35

#: delta-filter defaults.
DELTA_BLOCK = 4096
#: fraction of an (otherwise unchanged) process resident set assumed dirty
#: between consecutive epochs — page-granularity conservatism plus the
#: application's steady-state write traffic.
DELTA_DIRTY_FRACTION = 0.25

_DELTA_MAGIC = b"ZDLT"


# ---------------------------------------------------------------------------
# stage cost accounting
# ---------------------------------------------------------------------------


@dataclass
class StageCost:
    """One pipeline stage's contribution to the checkpoint (or restart).

    ``seconds`` is simulated time the Agent charges for the stage;
    ``in_bytes``/``out_bytes`` are the stage's size transfer (both include
    the accounted resident-set bytes, which are modeled, not moved).
    """

    stage: str
    seconds: float
    in_bytes: int
    out_bytes: int

    def as_stats(self) -> Dict[str, Any]:
        """Plain-dict form for wire messages and metrics rows."""
        return {"stage": self.stage, "seconds": self.seconds,
                "in_bytes": self.in_bytes, "out_bytes": self.out_bytes}


def record_stage_metrics(cluster, stage_stats: List[Dict[str, Any]]) -> None:
    """Account per-stage pipeline traffic into the cluster's metrics.

    One counter pair per stage name (``pipeline.<stage>.bytes`` /
    ``.invocations``) — the cumulative bytes each serialize / filter /
    write stage pushed, across every pod and epoch of the run.
    """
    if cluster.metrics is None:
        return
    for cost in stage_stats:
        stage = cost.get("stage", "?")
        cluster.count(f"pipeline.{stage}.bytes", int(cost.get("out_bytes", 0)))
        cluster.count(f"pipeline.{stage}.invocations")


@dataclass
class FilterContext:
    """Everything a filter may consult while encoding one image."""

    pod_id: str
    epoch: int
    state: Optional["PipelineState"] = None
    #: False when the image leaves this Agent (direct migration): a delta
    #: against a base the destination does not hold would be useless, so
    #: chain-dependent filters must emit self-contained output.
    chain_local: bool = True
    #: previous-epoch full payload (chain filters only; reads and restores).
    base: Optional[bytes] = None
    #: per-process memory segment tables of the pod being packed,
    #: ``{vpid: {segment: bytes}}`` — drives the accounted dirty model.
    proc_memory: Optional[Dict[int, Dict[str, int]]] = None
    #: *measured* per-process dirty tables, ``{vpid: {segment: dirty
    #: bytes}}``, captured at suspend against the checkpoint consumer's
    #: baseline (:meth:`repro.vos.memory.Memory.dirty_table`).  None when
    #: dirty tracking is off — filters then fall back to the heuristic.
    proc_dirty: Optional[Dict[int, Dict[str, int]]] = None


class PipelineState:
    """Per-Agent pipeline memory: delta bases and stored chains.

    The delta filter diffs each epoch against the previous epoch's full
    payload; the state holds that base per pod, the per-process memory
    tables behind the accounted dirty model, and (for in-memory URIs) the
    chain of images a restart must reassemble.  Base updates are staged
    through :meth:`stage_base` and applied by :meth:`commit` so an Agent
    that re-packs an image mid-protocol (the send-queue redirect path)
    diffs against the *previous* epoch, not its own first attempt.
    """

    def __init__(self) -> None:
        self.bases: Dict[str, bytes] = {}
        self.proc_memory: Dict[str, Dict[int, Dict[str, int]]] = {}
        self.epochs: Dict[str, int] = {}
        self.chains: Dict[str, List[PodImage]] = {}
        self._pending: Dict[str, Tuple[bytes, Dict[int, Dict[str, int]]]] = {}
        #: one-deep undo written by :meth:`commit`, consumed by
        #: :meth:`rollback` when a failed coordinated operation is
        #: garbage-collected.
        self._undo: Dict[str, Tuple[Optional[bytes],
                                    Optional[Dict[int, Dict[str, int]]], int]] = {}

    def epoch(self, pod_id: str) -> int:
        return self.epochs.get(pod_id, 0)

    def stage_base(self, pod_id: str, raw: bytes,
                   proc_memory: Dict[int, Dict[str, int]]) -> None:
        self._pending[pod_id] = (raw, proc_memory)

    def commit(self, pod_id: str) -> None:
        """Adopt the staged base and advance the pod's epoch."""
        pending = self._pending.pop(pod_id, None)
        if pending is not None:
            self._undo[pod_id] = (self.bases.get(pod_id),
                                  self.proc_memory.get(pod_id),
                                  self.epochs.get(pod_id, 0))
            self.bases[pod_id], self.proc_memory[pod_id] = pending
            self.epochs[pod_id] = self.epochs.get(pod_id, 0) + 1

    def abandon(self, pod_id: str) -> None:
        """Drop a staged (uncommitted) base — the abort path."""
        self._pending.pop(pod_id, None)

    def rollback(self, pod_id: str) -> bool:
        """Undo the most recent :meth:`commit` for ``pod_id``.

        Returns True if there was a commit to undo.  Used by the abort
        garbage collector so a failed operation cannot advance (and
        thereby corrupt) the delta-chain state behind the last good
        checkpoint.
        """
        undo = self._undo.pop(pod_id, None)
        if undo is None:
            return False
        base, proc_memory, epoch = undo
        if base is None:
            self.bases.pop(pod_id, None)
        else:
            self.bases[pod_id] = base
        if proc_memory is None:
            self.proc_memory.pop(pod_id, None)
        else:
            self.proc_memory[pod_id] = proc_memory
        self.epochs[pod_id] = epoch
        return True

    def note_full(self, pod_id: str, raw: bytes, standalone: Dict[str, Any],
                  epoch: int) -> None:
        """Record a reassembled full payload (restart side), so the next
        incremental checkpoint of the restored pod has its base."""
        self.bases[pod_id] = raw
        self.proc_memory[pod_id] = proc_memory_tables(standalone)
        self.epochs[pod_id] = epoch + 1

    def forget(self, pod_id: str) -> None:
        for store in (self.bases, self.proc_memory, self.epochs,
                      self.chains, self._pending):
            store.pop(pod_id, None)


# ---------------------------------------------------------------------------
# filters
# ---------------------------------------------------------------------------


class ImageFilter:
    """One stage of the image pipeline.

    A filter transforms the materialized payload bytes (for real — the
    round-trip must be bit-exact) and *models* its effect on the
    accounted resident-set bytes, which the simulation tracks by count.
    ``encode`` returns the transformed bytes plus per-image parameters
    that ``decode`` needs; both are recorded in the image envelope, so a
    filtered image is self-describing.
    """

    name = "?"

    def describe(self) -> Dict[str, Any]:
        """Static chain descriptor (negotiation + envelope)."""
        return {"name": self.name}

    def encode(self, data: bytes, ctx: FilterContext) -> Tuple[bytes, Dict[str, Any]]:
        raise NotImplementedError

    def decode(self, data: bytes, params: Dict[str, Any], ctx: FilterContext) -> bytes:
        raise NotImplementedError

    def model_accounted(self, accounted: int, ctx: FilterContext) -> int:
        """Post-stage size of the accounted (non-materialized) bytes."""
        return accounted

    def encode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        """Simulated CPU cost of encoding ``in_bytes`` through this stage."""
        return 0.0

    def decode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        """Simulated CPU cost of reversing the stage on restart."""
        return 0.0


class CompressFilter(ImageFilter):
    """zlib-style compression, configurable level.

    Materialized payload bytes are compressed with real ``zlib`` (exact
    round-trip); accounted bytes shrink by a modeled level-dependent
    ratio.  CPU cost is charged per input byte at a bandwidth that falls
    with the level — higher levels trade checkpoint CPU for image size.
    """

    name = "compress"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= int(level) <= 9:
            raise CheckpointError(f"compress level {level!r} outside 1..9")
        self.level = int(level)

    def describe(self) -> Dict[str, Any]:
        return {"name": self.name, "level": self.level}

    def encode(self, data: bytes, ctx: FilterContext) -> Tuple[bytes, Dict[str, Any]]:
        return zlib.compress(data, self.level), {}

    def decode(self, data: bytes, params: Dict[str, Any], ctx: FilterContext) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as err:
            raise RestartError(f"corrupt compressed image: {err}") from None

    def model_accounted(self, accounted: int, ctx: FilterContext) -> int:
        ratio = max(ACCOUNTED_RATIO_FLOOR,
                    ACCOUNTED_RATIO_BASE - ACCOUNTED_RATIO_SLOPE * self.level)
        return int(accounted * ratio)

    def encode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        return in_bytes / (COMPRESS_BW_BASE - COMPRESS_BW_SLOPE * (self.level - 1))

    def decode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        return out_bytes / DECOMPRESS_BW


class DeltaFilter(ImageFilter):
    """Incremental checkpointing: block-level diff against the previous
    epoch's payload.

    Epoch 0 (or any image leaving the node) passes through as a ``full``
    record and becomes the base; later epochs emit only the blocks that
    changed, so the 10 periodic checkpoints of Figure 6(a) write dirty
    state only after the first.  Accounted memory is charged *measured*
    dirty bytes when the Agent captured per-process dirty tables at
    suspend (``ctx.proc_dirty`` — the generational counters of
    :class:`repro.vos.memory.Memory` against the checkpoint consumer's
    baseline); without tracking (or with ``measured=False``) it falls
    back to the per-process heuristic: ``dirty_fraction`` of an
    unchanged process's resident set, and for a resized segment the
    steady-state fraction of the surviving pages plus the size delta
    (pages that are certainly new).  Restart reassembles the chain: the
    epoch-0 full payload patched by each delta in order.
    """

    name = "delta"

    def __init__(self, block: int = DELTA_BLOCK,
                 dirty_fraction: float = DELTA_DIRTY_FRACTION,
                 measured: bool = True) -> None:
        if int(block) <= 0:
            raise CheckpointError(f"delta block size {block!r} must be positive")
        if not 0.0 <= float(dirty_fraction) <= 1.0:
            raise CheckpointError(f"dirty fraction {dirty_fraction!r} outside [0, 1]")
        self.block = int(block)
        self.dirty_fraction = float(dirty_fraction)
        #: False forces the heuristic even when measured tables exist
        #: (the figures' heuristic-delta ablation variant).
        self.measured = bool(measured)

    def describe(self) -> Dict[str, Any]:
        spec = {"name": self.name, "block": self.block,
                "dirty_fraction": self.dirty_fraction}
        if not self.measured:
            # key present only for the non-default ablation so existing
            # envelopes / negotiated chains are byte-identical
            spec["measured"] = False
        return spec

    # -- payload bytes --------------------------------------------------
    def encode(self, data: bytes, ctx: FilterContext) -> Tuple[bytes, Dict[str, Any]]:
        base = ctx.base if ctx.chain_local else None
        if base is None:
            return data, {"kind": "full"}
        blocks: List[Tuple[int, bytes]] = []
        nblocks = (len(data) + self.block - 1) // self.block
        for i in range(nblocks):
            lo = i * self.block
            chunk = data[lo:lo + self.block]
            if chunk != base[lo:lo + self.block]:
                blocks.append((i, chunk))
        out = bytearray()
        out += _DELTA_MAGIC
        out += struct.pack(">IQI", self.block, len(data), len(blocks))
        for idx, chunk in blocks:
            out += struct.pack(">II", idx, len(chunk))
            out += chunk
        params: Dict[str, Any] = {"kind": "delta"}
        if self.measured and ctx.proc_dirty is not None:
            # generation provenance in the chain: this epoch's accounted
            # bytes came from measured dirty counters, not the heuristic
            # (key absent when tracking is off — old envelopes unchanged)
            params["dirty_model"] = "measured"
        return bytes(out), params

    def decode(self, data: bytes, params: Dict[str, Any], ctx: FilterContext) -> bytes:
        if params.get("kind") == "full":
            return data
        if ctx.base is None:
            raise RestartError(
                f"delta image for pod {ctx.pod_id!r} (epoch {ctx.epoch}) "
                "has no base payload to patch")
        if data[:4] != _DELTA_MAGIC:
            raise RestartError("corrupt delta image (bad magic)")
        block, length, count = struct.unpack(">IQI", data[4:20])
        out = bytearray(length)
        out[:min(length, len(ctx.base))] = ctx.base[:length]
        pos = 20
        for _ in range(count):
            idx, n = struct.unpack(">II", data[pos:pos + 8])
            pos += 8
            out[idx * block:idx * block + n] = data[pos:pos + n]
            pos += n
        if pos != len(data):
            raise RestartError(f"{len(data) - pos} trailing bytes in delta image")
        return bytes(out)

    # -- accounted memory ----------------------------------------------
    def model_accounted(self, accounted: int, ctx: FilterContext) -> int:
        if ctx.base is None or not ctx.chain_local or ctx.proc_memory is None:
            return accounted
        raw_total = sum(sum(t.values()) for t in ctx.proc_memory.values())
        if raw_total <= 0:
            return 0
        measured = ctx.proc_dirty if self.measured else None
        prev = (ctx.state.proc_memory.get(ctx.pod_id, {})
                if ctx.state is not None else {})
        dirty = 0
        for vpid, table in ctx.proc_memory.items():
            if measured is not None:
                # measured path: charge the dirty counters captured at
                # suspend (already clamped to segment size); a process or
                # segment the tracker never saw is charged in full
                seen = measured.get(vpid, {})
                dirty += sum(min(size, seen.get(seg, size))
                             for seg, size in table.items())
                continue
            prev_table = prev.get(vpid)
            if prev_table == table:
                dirty += int(self.dirty_fraction * sum(table.values()))
            elif prev_table is None:
                dirty += sum(table.values())  # new process: every page is new
            else:
                # resized process: surviving pages carry the steady-state
                # fraction; only the size delta is certainly new
                for seg, size in table.items():
                    old = prev_table.get(seg, 0)
                    dirty += min(size,
                                 int(self.dirty_fraction * min(old, size))
                                 + abs(size - old))
        # compose with whatever earlier stages did to the accounted bytes
        return int(accounted * (dirty / raw_total))

    def encode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        return in_bytes / DELTA_SCAN_BW

    def decode_seconds(self, in_bytes: int, out_bytes: int) -> float:
        return out_bytes / DELTA_SCAN_BW


#: registry of filter constructors, keyed by spec name.
FILTERS = {
    CompressFilter.name: CompressFilter,
    DeltaFilter.name: DeltaFilter,
}


def build_filter(spec: Dict[str, Any]) -> ImageFilter:
    """Instantiate one filter from a ``{"name": ..., **params}`` spec."""
    params = {k: v for k, v in spec.items() if k != "name"}
    try:
        ctor = FILTERS[spec["name"]]
    except KeyError:
        raise CheckpointError(f"unknown image filter {spec.get('name')!r}") from None
    return ctor(**params)


def negotiate_filters(
    requested: Optional[List[Dict[str, Any]]],
) -> Tuple[List[ImageFilter], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Agent-side filter negotiation.

    The Manager's checkpoint command *requests* a chain; the Agent
    accepts the stages it supports and drops the rest (reported back in
    the meta-data exchange, so the Manager — and through it the user —
    sees the chain actually applied).  Returns
    ``(filters, accepted_specs, rejected_specs)``.
    """
    filters: List[ImageFilter] = []
    accepted: List[Dict[str, Any]] = []
    rejected: List[Dict[str, Any]] = []
    for spec in requested or []:
        try:
            filters.append(build_filter(spec))
            accepted.append(dict(spec))
        except (CheckpointError, TypeError):
            rejected.append(dict(spec))
    return filters, accepted, rejected


def parse_filter_args(compress: Optional[int] = None,
                      incremental: bool = False) -> List[Dict[str, Any]]:
    """CLI flags → filter chain specs (delta before compress: compressing
    the delta is strictly smaller than delta-ing the compressed)."""
    specs: List[Dict[str, Any]] = []
    if incremental:
        specs.append({"name": "delta"})
    if compress is not None:
        specs.append({"name": "compress", "level": int(compress)})
    return specs


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


@dataclass
class ReassembledImage:
    """Result of reversing a filter chain on restart."""

    payload: Dict[str, Any]
    raw: bytes
    #: full (unfiltered) image size — what the restore-bandwidth charge
    #: rebuilds in memory.
    full_total_bytes: int
    #: simulated CPU seconds of filter reversal across the whole chain.
    decode_seconds: float
    stage_costs: List[StageCost] = field(default_factory=list)


class ImagePipeline:
    """An ordered filter chain between the codec and a sink.

    With no filters this is exactly the historic write path — the image
    bytes are byte-identical to :func:`repro.core.image.pack_pod_image`
    output and no extra cost stages appear.
    """

    def __init__(self, filters: Optional[List[ImageFilter]] = None) -> None:
        self.filters = list(filters or [])

    def describe(self) -> List[Dict[str, Any]]:
        return [f.describe() for f in self.filters]

    # -- checkpoint side ------------------------------------------------
    def pack(
        self,
        standalone: Dict[str, Any],
        socket_records: List[Dict[str, Any]],
        socket_fd_rows: List[Dict[str, Any]],
        devices: Optional[Dict[str, Any]] = None,
        *,
        state: Optional[PipelineState] = None,
        serialize_bandwidth: Optional[float] = None,
        chain_local: bool = True,
        proc_dirty: Optional[Dict[int, Dict[str, int]]] = None,
    ) -> PodImage:
        """Assemble, filter and cost-account one pod checkpoint image.

        When a chain filter (delta) is present, the new base is *staged*
        in ``state`` — call ``state.commit(pod_id)`` once the image is
        final (Agents re-pack after the send-queue redirect).
        """
        pod_id = standalone["pod_id"]
        if not self.filters:
            image = pack_pod_image(standalone, socket_records, socket_fd_rows, devices)
            if state is not None:
                state.stage_base(pod_id, image.data, proc_memory_tables(standalone))
            self._attach_serialize_cost(image, serialize_bandwidth)
            return image

        payload = build_payload(standalone, socket_records, socket_fd_rows, devices)
        raw = codec.encode(payload)
        raw_accounted = accounted_memory_bytes(standalone)
        epoch = state.epoch(pod_id) if state is not None else 0
        ctx = FilterContext(
            pod_id=pod_id,
            epoch=epoch,
            state=state,
            chain_local=chain_local,
            base=state.bases.get(pod_id) if state is not None else None,
            proc_memory=proc_memory_tables(standalone),
            proc_dirty=proc_dirty,
        )

        body = raw
        accounted = raw_accounted
        applied: List[Dict[str, Any]] = []
        costs: List[StageCost] = []
        if serialize_bandwidth:
            costs.append(StageCost("serialize", (len(raw) + raw_accounted) / serialize_bandwidth,
                                   len(raw) + raw_accounted, len(raw) + raw_accounted))
        for filt in self.filters:
            in_total = len(body) + accounted
            body, params = filt.encode(body, ctx)
            accounted = filt.model_accounted(accounted, ctx)
            out_total = len(body) + accounted
            costs.append(StageCost(filt.name, filt.encode_seconds(in_total, out_total),
                                   in_total, out_total))
            applied.append({**filt.describe(), **params})

        envelope = codec.encode({
            "format": PIPELINE_FORMAT_VERSION,
            "pod_id": pod_id,
            "epoch": epoch,
            "filters": applied,
            "body": body,
            "raw_bytes": len(raw),
            "raw_accounted": raw_accounted,
        })
        image = PodImage(
            pod_id=pod_id,
            data=envelope,
            encoded_bytes=len(envelope),
            accounted_bytes=accounted,
            netstate_bytes=_netstate_bytes(socket_records, devices),
            filters=applied,
            epoch=epoch,
            raw_encoded_bytes=len(raw),
            raw_accounted_bytes=raw_accounted,
            stage_costs=[c.as_stats() for c in costs],
        )
        if state is not None:
            state.stage_base(pod_id, raw, ctx.proc_memory)
        return image

    def _attach_serialize_cost(self, image: PodImage,
                               serialize_bandwidth: Optional[float]) -> None:
        if serialize_bandwidth:
            image.stage_costs = [StageCost(
                "serialize", image.total_bytes / serialize_bandwidth,
                image.total_bytes, image.total_bytes).as_stats()]

    # -- restart side ---------------------------------------------------
    @staticmethod
    def reassemble(chain: List[PodImage],
                   state: Optional[PipelineState] = None) -> ReassembledImage:
        """Reverse the filter chain of a stored image (or delta chain).

        ``chain`` is epoch-ordered: a single self-contained image, or the
        epoch-0 full image followed by each delta.  Returns the decoded
        payload plus the simulated reversal cost.
        """
        if not chain:
            raise RestartError("empty image chain")
        raw: Optional[bytes] = None
        decode_seconds = 0.0
        costs: List[StageCost] = []
        for image in chain:
            if not image.filters:
                raw = image.data
                continue
            envelope = codec.decode(image.data)
            if envelope.get("format") != PIPELINE_FORMAT_VERSION:
                raise RestartError(
                    f"unsupported filtered-image format {envelope.get('format')!r}")
            body = envelope["body"]
            ctx = FilterContext(pod_id=image.pod_id, epoch=int(envelope["epoch"]),
                                state=state, base=raw)
            for entry in reversed(envelope["filters"]):
                filt = build_filter({k: v for k, v in entry.items()
                                     if k not in ("kind", "dirty_model")})
                in_bytes = len(body)
                body = filt.decode(body, entry, ctx)
                seconds = filt.decode_seconds(in_bytes, len(body))
                decode_seconds += seconds
                costs.append(StageCost(f"un{filt.name}", seconds, in_bytes, len(body)))
            raw = body
        payload = codec.decode(raw)
        if payload.get("format") != FORMAT_VERSION:
            raise CheckpointError(f"unsupported image format {payload.get('format')!r}")
        last = chain[-1]
        full_total = (last.raw_total_bytes if last.filters else last.total_bytes)
        if state is not None:
            state.note_full(last.pod_id, raw, payload["standalone"], last.epoch)
        return ReassembledImage(payload=payload, raw=raw,
                                full_total_bytes=full_total,
                                decode_seconds=decode_seconds, stage_costs=costs)


def _netstate_bytes(socket_records: List[Dict[str, Any]],
                    devices: Optional[Dict[str, Any]]) -> int:
    from .devckpt import device_state_nbytes
    from .netckpt import netstate_nbytes

    devices = devices or {"states": [], "fd_rows": []}
    return netstate_nbytes(socket_records) + device_state_nbytes(devices["states"])


def image_extends_chain(image: PodImage) -> bool:
    """True when ``image`` is a delta depending on the previous epoch."""
    return any(entry.get("name") == "delta" and entry.get("kind") == "delta"
               for entry in image.filters)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class Sink:
    """Where a checkpoint image lands, and what the write costs.

    A sink owns the *storage semantics* (chain bookkeeping) and the
    *write cost model*; the Agent drives the protocol (the paper's
    write-to-memory-first discipline, the post-resume flush, the
    node-to-node push) and charges ``write_delay`` where its protocol
    step happens.
    """

    kind = "?"

    def write_delay(self, image: PodImage) -> float:
        return 0.0

    def write_cost(self, image: PodImage) -> StageCost:
        n = image.total_bytes
        return StageCost(f"write:{self.kind}", self.write_delay(image), n, n)


class MemorySink(Sink):
    """The Agent's in-memory store (the paper's default target), chain-aware."""

    kind = "mem"

    def __init__(self, images: Dict[str, PodImage], state: PipelineState) -> None:
        self.images = images
        self.state = state
        #: one-deep undo per pod: (previous image, previous chain).
        self._undo: Dict[str, Tuple[Optional[PodImage],
                                    Optional[List[PodImage]]]] = {}

    def write_delay(self, image: PodImage) -> float:
        return 0.0  # covered by the serialize stage: the image is built in RAM

    def store(self, image: PodImage) -> None:
        pod_id = image.pod_id
        prev_chain = self.state.chains.get(pod_id)
        self._undo[pod_id] = (self.images.get(pod_id),
                              list(prev_chain) if prev_chain is not None else None)
        if image_extends_chain(image) and prev_chain:
            self.state.chains[pod_id].append(image)
        else:
            self.state.chains[pod_id] = [image]
        self.images[pod_id] = image

    def rollback(self, pod_id: str) -> bool:
        """Restore the pre-:meth:`store` image and chain for ``pod_id``.

        The abort garbage collector uses this so a failed coordinated
        operation cannot replace the last good in-memory checkpoint with
        one half of an inconsistent cut.
        """
        undo = self._undo.pop(pod_id, None)
        if undo is None:
            return False
        image, chain = undo
        if image is None:
            self.images.pop(pod_id, None)
        else:
            self.images[pod_id] = image
        if chain is None:
            self.state.chains.pop(pod_id, None)
        else:
            self.state.chains[pod_id] = chain
        return True

    def load(self, pod_id: str) -> List[PodImage]:
        chain = self.state.chains.get(pod_id)
        if chain:
            return list(chain)
        image = self.images.get(pod_id)
        return [image] if image is not None else []


class FileSink(Sink):
    """Flush to shared storage (the SAN every blade mounts).

    Unfiltered images keep the historic single-image container format
    byte-for-byte; filtered images write a chain container that a delta
    epoch extends (charged only for the appended bytes — the SAN write
    is an append, not a rewrite).
    """

    kind = "file"

    def __init__(self, san, vfs, path: str) -> None:
        self.san = san
        self.vfs = vfs
        self.path = path

    def write_delay(self, image: PodImage) -> float:
        if image_extends_chain(image):
            # delta epoch: the chain container grows by one record; only
            # the appended bytes cross the FC link
            return self.san.append_delay(image.total_bytes)
        return self.san.flush_delay(image.total_bytes)

    def store(self, image: PodImage, truncate: Optional[float] = None) -> None:
        """Write the image container; ``truncate`` (a fraction in (0, 1))
        simulates a write cut short by a fault — only that prefix of the
        container reaches the SAN, which the read-back validation in
        :meth:`load` must then reject."""
        if not image.filters:
            container = codec.encode({
                "data": image.data,
                "accounted": image.accounted_bytes,
                "netstate": image.netstate_bytes,
            })
        else:
            entries: List[Dict[str, Any]] = []
            if image_extends_chain(image):
                try:
                    handle = self.vfs.open(self.path, "r")
                    existing = codec.decode(bytes(handle.file.data))
                    entries = list(existing.get("chain", []))
                except Exception:
                    entries = []
            entries.append(_chain_entry(image))
            container = codec.encode({"chain": entries})
        if truncate is not None:
            container = container[:max(1, int(len(container) * float(truncate)))]
        handle = self.vfs.open(self.path, "w")
        handle.write(container)

    def exists(self) -> bool:
        fs, inner = self.vfs.resolve(self.path)
        return inner in fs.files

    def unlink(self) -> None:
        """Remove the container — abort-path garbage collection."""
        fs, inner = self.vfs.resolve(self.path)
        fs.files.pop(inner, None)

    def load(self, pod_id: str) -> List[PodImage]:
        """Load and validate the image chain at this path.

        A truncated or otherwise corrupt container must never be visible
        as restartable: every decode error is converted into a clean
        :class:`RestartError` here, before any pod state is touched.
        """
        try:
            handle = self.vfs.open(self.path, "r")
        except Exception:
            raise RestartError(f"no image at {self.path!r}") from None
        try:
            container = codec.decode(bytes(handle.file.data))
            if "chain" in container:
                chain = [_image_from_entry(pod_id, entry)
                         for entry in container["chain"]]
                if not chain:
                    raise CodecError("empty image chain")
                return chain
            return [PodImage(
                pod_id=pod_id,
                data=bytes(container["data"]),
                encoded_bytes=len(container["data"]),
                accounted_bytes=int(container["accounted"]),
                netstate_bytes=int(container["netstate"]),
            )]
        except (CodecError, KeyError, TypeError, ValueError) as err:
            raise RestartError(
                f"partial or corrupt image at {self.path!r}: {err}") from None


class StreamSink(Sink):
    """Direct migration: the image crosses the fabric to a peer Agent.

    The encoded payload travels over the simulated network for real; the
    accounted (ballast) bytes are charged as streaming time at fabric
    bandwidth without materializing them — which is why compression's
    accounted-ratio model directly buys migration time.
    """

    kind = "stream"

    def __init__(self, fabric_bandwidth: float) -> None:
        self.fabric_bandwidth = fabric_bandwidth

    def write_delay(self, image: PodImage) -> float:
        return image.accounted_bytes / self.fabric_bandwidth


def _chain_entry(image: PodImage) -> Dict[str, Any]:
    return {
        "data": image.data,
        "accounted": image.accounted_bytes,
        "netstate": image.netstate_bytes,
        "filters": image.filters,
        "epoch": image.epoch,
        "raw_bytes": image.raw_encoded_bytes,
        "raw_accounted": image.raw_accounted_bytes,
    }


def _image_from_entry(pod_id: str, entry: Dict[str, Any]) -> PodImage:
    return PodImage(
        pod_id=pod_id,
        data=bytes(entry["data"]),
        encoded_bytes=len(entry["data"]),
        accounted_bytes=int(entry["accounted"]),
        netstate_bytes=int(entry["netstate"]),
        filters=list(entry.get("filters") or []),
        epoch=int(entry.get("epoch", 0)),
        raw_encoded_bytes=entry.get("raw_bytes"),
        raw_accounted_bytes=entry.get("raw_accounted"),
    )
