"""The alternate receive queue and dispatch-vector interposition.

The kernel provides no interface to insert data into a socket's receive
queue, so ZapC "allocate[s] an alternate receive queue in which this
data is deposited.  We then interpose on the socket interface calls to
ensure that future application requests will be satisfied with this data
first, before access is made to the main receive queue. ... Specifically
we interpose on the three methods that may involve the data in the
receive queue: ``recvmsg``, ``poll`` and ``release``.  Interposition
only persists as long as the alternate queue contains data; when the
data becomes depleted, the original methods are reinstalled to avoid
incurring overhead for regular socket operation."

This module is a line-for-line realization of that design against the
simulated socket layer's per-socket dispatch vector.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from ..net.sockets import MSG_OOB, MSG_PEEK, NetStack, Socket, _MSG_WANT_SRC


class AltQueue:
    """Restored receive-side data attached in front of a live socket."""

    def __init__(self, data: bytes = b"", oob: bytes = b"") -> None:
        self.data = bytearray(data)
        self.oob = bytearray(oob)

    @property
    def empty(self) -> bool:
        """True once both stream data and urgent data are consumed."""
        return not self.data and not self.oob

    def append(self, data: bytes) -> None:
        """Concatenate more stream data (the send-queue-redirect path:
        a migrating peer's send queue lands at the tail of this queue)."""
        self.data.extend(data)


def install(sock: Socket, alt: AltQueue) -> None:
    """Interpose on ``recvmsg``, ``poll`` and ``release`` of ``sock``.

    The original methods are captured in the closures and reinstalled by
    :func:`_maybe_uninstall` when the alternate queue drains.
    """
    if alt.empty:
        return
    sock.zapc_altqueue = alt
    orig_recvmsg = sock.dispatch["recvmsg"]
    orig_poll = sock.dispatch["poll"]
    orig_release = sock.dispatch["release"]
    originals = {"recvmsg": orig_recvmsg, "poll": orig_poll, "release": orig_release}

    def alt_recvmsg(stack: NetStack, s: Socket, n: int, flags: int) -> Any:
        if flags & MSG_OOB:
            if alt.oob:
                take = bytes(alt.oob[:n])
                if not flags & MSG_PEEK:
                    del alt.oob[:n]
                    _maybe_uninstall(s, alt, originals)
                return take
            return orig_recvmsg(stack, s, n, flags)
        if alt.data:
            if flags & MSG_PEEK:
                return bytes(alt.data[:n])
            take = bytearray(alt.data[:n])
            del alt.data[:n]
            # POSIX allows a short read; but if the caller asked for more
            # and the main queue already has contiguous data, splice it in
            # so restored data never reorders after new data.
            if len(take) < n:
                rest = orig_recvmsg(stack, s, n - len(take), flags)
                if isinstance(rest, (bytes, bytearray)):
                    take.extend(rest)
            _maybe_uninstall(s, alt, originals)
            if flags & _MSG_WANT_SRC:
                return (bytes(take), tuple(s.remote) if s.remote else ("", 0))
            return bytes(take)
        return orig_recvmsg(stack, s, n, flags)

    def alt_poll(stack: NetStack, s: Socket) -> Set[str]:
        events = set(orig_poll(stack, s))
        if alt.data or alt.oob:
            events.add("r")
        return events

    def alt_release(stack: NetStack, s: Socket, proc: Any) -> None:
        # proper cleanup "in case the data has not been entirely consumed
        # before the process terminates"
        alt.data.clear()
        alt.oob.clear()
        _reinstall(s, originals)
        orig_release(stack, s, proc)

    sock.dispatch["recvmsg"] = alt_recvmsg
    sock.dispatch["poll"] = alt_poll
    sock.dispatch["release"] = alt_release


def _maybe_uninstall(sock: Socket, alt: AltQueue, originals: dict) -> None:
    if alt.empty:
        _reinstall(sock, originals)


def _reinstall(sock: Socket, originals: dict) -> None:
    sock.dispatch.update(originals)
    if getattr(sock, "zapc_altqueue", None) is not None:
        sock.zapc_altqueue = None


def active_altqueue(sock: Socket) -> Optional[AltQueue]:
    """The live alternate queue on ``sock``, if interposition is active.

    The checkpoint procedure uses this because it "must save the state of
    the alternate queue, if applicable (e.g. if a second checkpoint is
    taken before the application reads its pending data)".
    """
    alt = getattr(sock, "zapc_altqueue", None)
    if alt is not None and not alt.empty:
        return alt
    return None
