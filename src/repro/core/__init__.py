"""ZapC core: coordinated, transparent checkpoint-restart.

The paper's contribution, on top of the substrates: the intermediate
image format (:mod:`~repro.core.codec`), per-pod standalone
checkpoint-restart (:mod:`~repro.core.standalone`), the
transport-protocol-independent network-state mechanism
(:mod:`~repro.core.netckpt`, :mod:`~repro.core.altqueue`), time
virtualization (:mod:`~repro.core.timevirt`), and the Manager/Agent
coordination protocol (:mod:`~repro.core.manager`,
:mod:`~repro.core.agent`) with direct node-to-node migration
(:mod:`~repro.core.streaming`).
"""

from .agent import AGENT_PORT, Agent, deploy_agents
from .altqueue import AltQueue, active_altqueue, install
from .image import PodImage, pack_pod_image
from .manager import Manager, OpResult
from .meta import build_pod_meta, derive_restart_plan
from .netckpt import capture_pod_network, capture_socket, netstate_nbytes, restore_socket_state
from .standalone import activate_pod, capture_pod_standalone, restore_pod_standalone
from .streaming import MigrationResult, migrate, migrate_task
from .timevirt import apply_clock, capture_timers, restore_timers

__all__ = [
    "AGENT_PORT",
    "Agent",
    "AltQueue",
    "Manager",
    "MigrationResult",
    "OpResult",
    "PodImage",
    "activate_pod",
    "active_altqueue",
    "apply_clock",
    "build_pod_meta",
    "capture_pod_network",
    "capture_pod_standalone",
    "capture_socket",
    "capture_timers",
    "deploy_agents",
    "derive_restart_plan",
    "install",
    "migrate",
    "migrate_task",
    "netstate_nbytes",
    "pack_pod_image",
    "restore_pod_standalone",
    "restore_socket_state",
    "restore_timers",
]
