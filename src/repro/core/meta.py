"""Checkpoint *meta-data*: the network connectivity table and schedules.

At checkpoint each Agent reports a table describing "all the network
connections of the pod ... The source and target fields describe the
connection endpoint IP addresses and port numbers.  The state field
reflects the state of the connection, which may be full-duplex,
half-duplex, closed (in which case there may still be unread data), or
connecting."

At restart the Manager derives from the collected tables "a new network
connectivity map by substituting the destination network addresses in
place of the original addresses" and "a schedule that indicates for
each connection which peer will initiate and which peer will accept ...
tagging each entry as either a connect or accept type", honoring the
source-port-inheritance constraint for connections sharing a port.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..errors import CheckpointError

Ep = Tuple[str, int]


def connection_key(src: Ep, dst: Ep) -> Tuple[Ep, Ep]:
    """Order-independent identity of a connection (the 4-tuple)."""
    return (src, dst) if (src, dst) <= (dst, src) else (dst, src)


def build_pod_meta(pod_id: str, socket_records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The per-pod connection table an Agent reports in step 2a.

    One entry per TCP connection endpoint living in the pod (listeners
    are reported too, flagged, so restart can rebuild them).
    """
    table: List[Dict[str, Any]] = []
    for rec in socket_records:
        if rec["proto"] != "tcp":
            continue
        if rec["listening"]:
            table.append({
                "pod": pod_id,
                "sock_id": rec["sock_id"],
                "src": rec["local"],
                "dst": None,
                "state": "listening",
                "origin": None,
                "pcb": None,
            })
        elif rec["remote"] is not None:
            table.append({
                "pod": pod_id,
                "sock_id": rec["sock_id"],
                "src": rec["local"],
                "dst": rec["remote"],
                "state": rec["meta_state"],
                "origin": rec["origin"],
                "pcb": rec["pcb"],
            })
    return table


def derive_restart_plan(
    metas: Dict[str, List[Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Build each pod's restart instructions from the merged meta-data.

    Returns ``{pod_id: {"listeners": [...], "schedule": [...]}}`` where
    each schedule entry carries the connect/accept role, the endpoint
    pair, and ``send_discard`` — the byte count of send-queue overlap to
    drop, computed from the two PCBs via the ``recv₁ ≥ acked₂``
    invariant ("it is more advantageous to discard that of the send
    queue to avoid transferring it over the network").
    """
    # index connection endpoints by 4-tuple
    endpoints: Dict[Tuple[Ep, Ep], List[Dict[str, Any]]] = {}
    plan: Dict[str, Dict[str, Any]] = {
        pod_id: {"listeners": [], "schedule": []} for pod_id in metas
    }
    for pod_id, table in metas.items():
        for entry in table:
            if entry["state"] == "listening":
                plan[pod_id]["listeners"].append(
                    {"sock_id": entry["sock_id"], "local": entry["src"]}
                )
            elif entry["dst"] is not None:
                key = connection_key(tuple(entry["src"]), tuple(entry["dst"]))
                endpoints.setdefault(key, []).append(entry)

    for key, ends in endpoints.items():
        if len(ends) > 2:
            raise CheckpointError(f"connection {key} has {len(ends)} endpoints")
        if len(ends) == 1:
            (entry,) = ends
            if entry["state"] == "connecting":
                # mid-handshake active open: the peer held no checkpointable
                # socket yet; the blocked connect syscall re-drives the
                # handshake after restart
                role = "defer"
            else:
                # the peer's socket was already closed and released: no one
                # to reconnect to; restore queued data + EOF only
                role = "orphan"
            plan[entry["pod"]]["schedule"].append({
                "sock_id": entry["sock_id"],
                "role": role,
                "src": tuple(entry["src"]),
                "dst": tuple(entry["dst"]),
                "state": entry["state"],
                "send_discard": 0,
                "peer_pod": None,
                "peer_sock_id": None,
            })
            continue
        a, b = ends
        # pick the accept side: the endpoint originally created by accept
        # must be recreated through a listener so it inherits the shared
        # source port; with no accepted side the choice is arbitrary.
        if a["origin"] == "accepted":
            acceptor, connector = a, b
        elif b["origin"] == "accepted":
            acceptor, connector = b, a
        else:
            acceptor, connector = (a, b) if tuple(a["src"]) <= tuple(b["src"]) else (b, a)
        for me, peer, role in ((acceptor, connector, "accept"), (connector, acceptor, "connect")):
            discard = 0
            if me["pcb"] is not None and peer["pcb"] is not None:
                # bytes of my send queue the peer already received
                discard = max(0, peer["pcb"]["recv"] - me["pcb"]["acked"])
            plan[me["pod"]]["schedule"].append({
                "sock_id": me["sock_id"],
                "role": role if me["state"] != "connecting" else "defer",
                "src": tuple(me["src"]),
                "dst": tuple(me["dst"]),
                "state": me["state"],
                "send_discard": discard,
                "peer_pod": peer["pod"],
                "peer_sock_id": peer["sock_id"],
            })
    return plan


def remap_addresses(meta_or_plan: Any, address_map: Dict[str, str]) -> Any:
    """Rewrite virtual addresses per the migration mapping.

    With pod-private virtual addresses the mapping is usually the
    identity — the vnet layer re-homes addresses instead — but the
    mechanism exists for restoring onto a cluster that must renumber
    (the Cruz limitation ZapC lifts).  Works on nested lists/dicts.
    """
    def walk(obj: Any) -> Any:
        if isinstance(obj, tuple) and len(obj) == 2 and isinstance(obj[0], str):
            return (address_map.get(obj[0], obj[0]), obj[1])
        if isinstance(obj, list):
            return [walk(x) for x in obj]
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        return obj

    return walk(meta_or_plan)
