"""The per-node ZapC Agent.

A daemon (host task) on every cluster node that executes the local side
of the coordinated checkpoint-restart protocol:

Checkpoint (Figure 1): suspend the pod and block its network → capture
network state → report *meta-data* to the Manager → capture standalone
pod state (overlapping the Manager's collection of everyone's
meta-data) → wait for ``continue`` → unblock the network and report
``done`` → finally resume (snapshot) or destroy (migration) the pod.

Restart (Figure 3): create an empty pod → recover network connectivity
from the Manager's schedule using **two threads of execution** ("one
thread handles requests for incoming connections, and the other
establishes connections to remote pods" — which is what makes the
recovery deadlock-free without computing a deadlock-free order) →
restore network state → standalone restart → report ``done``.

The Agent also receives streamed images for direct migration, and
aborts gracefully (resuming the pod) when the Manager dies mid-protocol.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..cluster.builder import Cluster
from ..cluster.node import Node
from ..errors import CheckpointError, CodecError, RestartError
from ..pod.pod import Pod
from ..sim.tasks import Future, all_of
from ..vos.syscalls import Errno
from .devckpt import capture_pod_devices, restore_pod_devices
from .image import PodImage
from ..obs.tracer import NULL_SPAN
from .meta import build_pod_meta
from .netckpt import (
    block_pod_network,
    capture_pod_network,
    netstate_nbytes,
    restore_socket_state,
    unblock_pod_network,
)
from .pipeline import (
    FileSink,
    ImagePipeline,
    MemorySink,
    PipelineState,
    ReassembledImage,
    StreamSink,
    negotiate_filters,
    record_stage_metrics,
)
from .standalone import (
    activate_pod,
    capture_pod_standalone,
    capture_proc_dirty,
    restore_pod_standalone,
)
from .wire import recv_msg, send_msg

#: TCP port every Agent listens on (on the node's real address).
AGENT_PORT = 7700
#: per-socket kernel work during network-state capture, seconds
#: (queue reads + option enumeration through standard interfaces).
CKPT_PER_SOCKET = 0.4e-3
#: per-socket kernel work during network-state restore, seconds
#: (socket creation, options, alternate-queue injection).
RESTORE_PER_SOCKET = 2e-3
#: polling period while waiting for a suspended pod to quiesce.
QUIESCE_POLL = 0.2e-3
#: connector retry delay when the peer's listener is not up yet.
CONNECT_RETRY = 2e-3

#: generational dirty-tracking consumers (see
#: :class:`repro.vos.memory.Memory`): incremental checkpoints, live
#: pre-copy rounds and the async path's copy-on-write window each keep
#: an independent baseline, so none can clobber another's ``clear_dirty``.
CKPT_CONSUMER = "ckpt"
PRECOPY_CONSUMER = "precopy"
COW_CONSUMER = "cow"


def _stage_seconds(image: PodImage, kind: Optional[str] = None) -> float:
    """Sum the pack-side stage costs recorded on an image.

    ``kind=None`` sums everything; ``"serialize"`` only the codec stage;
    ``"filter"`` every non-serialize, non-write stage.
    """
    total = 0.0
    for cost in image.stage_costs:
        stage = cost.get("stage", "")
        if kind is None:
            pass
        elif kind == "serialize" and stage != "serialize":
            continue
        elif kind == "filter" and (stage == "serialize" or stage.startswith("write")):
            continue
        total += float(cost.get("seconds", 0.0))
    return total


class Agent:
    """One node's checkpoint-restart agent."""

    def __init__(self, cluster: Cluster, node: Node) -> None:
        self.cluster = cluster
        self.node = node
        self.kernel = node.kernel
        self.engine = node.kernel.engine
        #: in-memory checkpoint store: pod_id -> PodImage (the paper's
        #: write-to-memory semantics; flushing to the SAN is separate).
        #: Holds the *latest* image; delta chains live in the pipeline
        #: state behind :attr:`mem_sink`.
        self.images: Dict[str, PodImage] = {}
        #: per-pod pipeline memory: delta bases, epochs, stored chains.
        self.pipeline_state = PipelineState()
        self.mem_sink = MemorySink(self.images, self.pipeline_state)
        #: redirected send-queue data awaiting a restart here:
        #: (pod_id, sock_id) -> bytes, pushed by migrating peers'
        #: agents ("merge it with the peer's stream of checkpoint data").
        self.redirect_store: Dict[Tuple[str, int], bytes] = {}
        #: pre-copy accounting for live migration: pod_id -> accumulated
        #: byte counts shipped here round by round while the source pod
        #: keeps running.  Pure accounting (the accounted bytes are never
        #: materialized); the restartable image still arrives through the
        #: normal push_image path at the final stop-and-copy.
        self.precopy_store: Dict[str, Dict[str, Any]] = {}
        #: op-id tombstones: operations the Manager garbage-collected.
        #: A session still working for a dead operation must not publish
        #: its image (the late store would shadow the last good one).
        self.gc_ops: set = set()
        #: continue-wait re-attach registry: (op_id, pod_id) -> Future.
        #: A checkpoint session parked at the barrier can be completed
        #: (``continue_op``) or aborted (``gc``) through a *different*
        #: connection — how a takeover Manager adopts the dead one's
        #: in-flight sessions.
        self.op_waits: Dict[Tuple[int, str], Future] = {}
        #: pod_id -> op id of the last checkpoint committed locally
        #: (lets a takeover Manager attribute an in-memory image to the
        #: op it is trying to finish, not an older one).
        self.committed_ops: Dict[str, int] = {}
        self._task = None

    # ------------------------------------------------------------------
    # daemon
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the listening daemon."""
        self._task = self.engine.spawn(self._serve(), name=f"agent@{self.node.name}")

    def _serve(self):
        kernel = self.kernel
        chan = kernel.host_channel("agent-listen")
        lfd = yield kernel.host_call(chan, "socket", "tcp")
        yield kernel.host_call(chan, "setsockopt", lfd, "SO_REUSEADDR", 1)
        yield kernel.host_call(chan, "bind", lfd, (self.node.ip, AGENT_PORT))
        yield kernel.host_call(chan, "listen", lfd, 64)
        while True:
            result = yield kernel.host_call(chan, "accept", lfd)
            if isinstance(result, Errno):
                return
            newfd, _peer = result
            # hand the connection to a session with its own channel so
            # sessions proceed concurrently
            sock = chan.fds.pop(newfd)
            schan = kernel.host_channel("agent-session")
            schan.fds[newfd] = sock
            schan.next_fd = max(schan.next_fd, newfd + 1)
            self.engine.spawn(self._session(schan, newfd), name=f"agent-session@{self.node.name}")

    def _session(self, chan, fd):
        kernel = self.kernel
        try:
            msg = yield from recv_msg(kernel, chan, fd)
            if msg is None:
                return
            cmd = msg.get("cmd")
            try:
                if cmd == "checkpoint":
                    yield from self._do_checkpoint(chan, fd, msg)
                    return
                elif cmd == "load_meta":
                    yield from self._do_load_meta(chan, fd, msg)
                    return
                elif cmd == "restart":
                    yield from self._do_restart(chan, fd, msg)
                    return
                elif cmd == "precopy":
                    yield from self._do_precopy(chan, fd, msg)
                    return
            except RestartError as err:
                # a failed restart is reported, not hung: the Manager
                # hears the reason instead of waiting out its deadline
                yield from send_msg(kernel, chan, fd, {
                    "type": "done", "pod": msg.get("pod"),
                    "status": "failed", "error": str(err),
                })
                return
            if cmd == "push_image":
                self._store_pushed(msg)
                yield from send_msg(kernel, chan, fd, {"type": "stored"})
            elif cmd == "precopy_push":
                self._store_precopy(msg)
                yield from send_msg(kernel, chan, fd, {"type": "stored"})
            elif cmd == "push_redirect":
                self.redirect_store[(msg["pod"], int(msg["sock_id"]))] = bytes(msg["data"])
                yield from send_msg(kernel, chan, fd, {"type": "stored"})
            elif cmd == "ping":
                yield from send_msg(kernel, chan, fd, {"type": "pong", "node": self.node.name})
            elif cmd == "gc":
                # abort-path garbage collection: tombstone the op, break
                # any session still parked at its barrier, and roll the
                # local stores back to the pre-op state.  Idempotent
                # under double-abort: a second gc for an op already
                # tombstoned here (a takeover replica re-running a
                # half-done abort) must NOT roll back again — state
                # committed *after* the first abort (a newer successful
                # checkpoint) would be destroyed.
                op = int(msg.get("op_id", 0))
                already = bool(op) and op in self.gc_ops
                if op:
                    self.gc_ops.add(op)
                    self._signal_op(op, {"cmd": "abort"})
                    # content-addressed store: release anything the op
                    # staged or published fleet-wide (op-keyed, so this
                    # is idempotent under replayed broadcasts and never
                    # touches a later committed generation)
                    from ..storage.cas import CasStore
                    CasStore.on(self.cluster.san).abort_op(op)
                if not already:
                    for pid in msg.get("pods", []):
                        self._gc_pod(pid)
                yield from send_msg(kernel, chan, fd, {"type": "gcd", "node": self.node.name})
            elif cmd == "continue_op":
                # takeover re-attach: complete the continue barrier of a
                # resumable op on behalf of its dead Manager.  The ledger
                # guarantees the continue broadcast was decided, so
                # releasing the parked sessions preserves the sync point.
                op = int(msg.get("op_id", 0))
                waiting = sorted(p for (o, p) in self.op_waits if o == op)
                if op and op not in self.gc_ops:
                    self._signal_op(op, {"cmd": "continue", "redirect_out": []})
                yield from send_msg(kernel, chan, fd, {
                    "type": "reattached", "op_id": op,
                    "node": self.node.name, "waiting": waiting})
            elif cmd == "query_image":
                pod = msg.get("pod")
                chain = self.mem_sink.load(pod)
                yield from send_msg(kernel, chan, fd, {
                    "type": "image_status", "pod": pod,
                    "exists": bool(chain),
                    "op_ok": self.committed_ops.get(pod) == int(msg.get("op_id", -1)),
                })
            elif cmd == "query_pod":
                pod = kernel.pods.get(msg.get("pod"))
                yield from send_msg(kernel, chan, fd, {
                    "type": "pod_status", "pod": msg.get("pod"),
                    "exists": pod is not None,
                    "running": pod is not None and not pod.suspended,
                })
            else:
                yield from send_msg(kernel, chan, fd, {"type": "error", "error": f"unknown cmd {cmd!r}"})
        finally:
            # synchronous close: a ``yield`` here would break generator
            # finalization when an abandoned session is garbage-collected
            sock = chan.fds.pop(fd, None)
            if sock is not None and not sock.closed:
                sock.release(kernel, chan)

    # ------------------------------------------------------------------
    # checkpoint (Figure 1, Agent side)
    # ------------------------------------------------------------------
    def _capture_network(self, pod: Pod):
        """Network-state capture strategy; baselines override this
        (e.g. the Cruz-style peek capture in repro.baselines.peek)."""
        return capture_pod_network(pod)

    def _do_checkpoint(self, chan, fd, msg):
        kernel = self.kernel
        engine = self.engine
        pod_id = msg["pod"]
        uri = msg["uri"]
        context = msg.get("context", "snapshot")
        op_id = int(msg.get("op_id", 0))
        live = bool(msg.get("live", False))
        wait_timeout = float(msg.get("wait_timeout", 0.0) or 0.0)
        pod: Optional[Pod] = kernel.pods.get(pod_id)
        if pod is None:
            yield from send_msg(kernel, chan, fd, {"type": "error", "error": f"no pod {pod_id!r}"})
            return
        # filter negotiation: the Manager requests a chain, the Agent
        # accepts the stages it supports and reports the applied chain
        # back in the meta-data exchange
        filters, accepted_specs, rejected_specs = negotiate_filters(msg.get("filters"))
        pipeline = ImagePipeline(filters)
        # a delta against a base the destination Agent does not hold is
        # useless: images that leave this node must be self-contained
        chain_local = not uri.startswith("agent://")
        # measured dirty tracking pays off for a chain-local delta filter
        # — and for any content-addressed target, whose dedup model needs
        # the dirty byte count to tell changed blocks from clean ones
        track_dirty = chain_local and (any(
            f.name == "delta" and getattr(f, "measured", True)
            for f in filters) or uri.startswith("cas:"))
        # zero-stall (asynchronous) checkpointing: capture-then-resume
        # needs the pod to survive (snapshot context) and the image to
        # stay on this node's sinks — direct migration and the
        # standalone-first ordering ablation fall back to the serial path
        use_async = (bool(msg.get("async_ckpt", False))
                     and context == "snapshot"
                     and not uri.startswith("agent://")
                     and msg.get("order", "net-first") != "standalone-first")
        stack = kernel.netstack
        t0 = engine.now
        #: the Manager's operation span (if a tracer is installed the
        #: Manager registered it under this key; resolves to no parent
        #: otherwise) — all per-pod phase spans hang off it.  The tracer
        #: also stamps the key's ambient context (driving Manager span,
        #: owner name) onto every span parented here, so a later trace
        #: assembly can attribute this Agent's work to the incarnation
        #: that commanded it without any ids riding the wire.
        op_parent = ("op", op_id)

        # 1. suspend pod, block network
        phase = self.cluster.span("agent.phase.suspend", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        pod.suspend()
        while not pod.quiescent():
            yield engine.sleep(QUIESCE_POLL)
        net_window = block_pod_network(self.cluster, stack, pod,
                                       node=self.node.name, parent=op_parent)
        t_suspended = engine.now
        # live migration: once suspended, nothing dirties memory anymore —
        # whatever the pre-copy rounds did not ship is the final residual
        residual = (sum(p.memory.dirty_in(PRECOPY_CONSUMER)
                        for p in pod.processes()) if live else None)
        # measured dirty tables against the checkpoint baseline, captured
        # at suspend; the baseline clear is *staged* — only a committed
        # op keeps it, an abort folds the generation back so the next
        # epoch never undercounts
        proc_dirty = None
        if track_dirty:
            proc_dirty = capture_proc_dirty(pod, CKPT_CONSUMER)
            for p in pod.processes():
                p.memory.begin_clear(CKPT_CONSUMER)
        yield from self.cluster.trace("agent.suspend", node=self.node.name, pod=pod_id)
        phase.end()

        # Ordering ablation: the default saves network state first so the
        # standalone capture overlaps the Manager's meta-data sync; the
        # "standalone-first" variant serializes them (the design §4 argues
        # against), exposing the sync latency in the total.
        order = msg.get("order", "net-first")

        def standalone_pass():
            standalone = capture_pod_standalone(pod)
            return standalone

        if order == "standalone-first":
            phase = self.cluster.span("agent.phase.standalone",
                                      node=self.node.name, pod=pod_id,
                                      parent=op_parent, order=order)
            standalone = standalone_pass()
            yield engine.sleep(self.node.spec.ckpt_fixed_s)
            phase.end()

        # 2. network-state checkpoint (plus bypass-device state, §5 ext.)
        phase = self.cluster.span("agent.phase.netstate", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        sock_records, sock_fd_rows = self._capture_network(pod)
        dev_states, dev_fd_rows = capture_pod_devices(pod)
        devices = {"states": dev_states, "fd_rows": dev_fd_rows}
        net_bytes = netstate_nbytes(sock_records)
        yield engine.sleep(CKPT_PER_SOCKET * max(1, len(sock_records))
                           + net_bytes / self.node.spec.memcpy_bandwidth)
        t_net_done = engine.now
        yield from self.cluster.trace("agent.netstate", node=self.node.name, pod=pod_id)
        phase.end(nbytes=net_bytes, sockets=len(sock_records))
        self.cluster.count("agent.netstate.bytes", net_bytes)
        meta = build_pod_meta(pod_id, sock_records)

        if order == "standalone-first":
            # serialize the image *before* reporting: nothing overlaps
            phase = self.cluster.span("agent.phase.standalone",
                                      node=self.node.name, pod=pod_id,
                                      parent=op_parent, order=order)
            image = pipeline.pack(standalone, sock_records, sock_fd_rows, devices,
                                  state=self.pipeline_state,
                                  serialize_bandwidth=self.node.spec.memcpy_bandwidth,
                                  chain_local=chain_local, proc_dirty=proc_dirty)
            t_enc = engine.now
            yield engine.sleep(_stage_seconds(image))
            self._emit_stage_spans(image, t_enc, pod_id, phase)
            phase.end()

        # 2a. report meta-data
        phase = self.cluster.span("agent.phase.meta_report", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        report: Dict[str, Any] = {"type": "meta", "pod": pod_id, "meta": meta,
                                  "filters": accepted_specs,
                                  "filters_rejected": rejected_specs}
        ok = yield from send_msg(kernel, chan, fd, report)
        if not ok:
            phase.end(status="failed")
            self._abort_checkpoint(
                pod, net_window,
                dirty_consumer=CKPT_CONSUMER if track_dirty else None)
            return
        yield from self.cluster.trace("agent.meta_sent", node=self.node.name, pod=pod_id)
        phase.end()

        # 3. standalone checkpoint (overlaps the Manager's meta sync)
        phase = self.cluster.span("agent.phase.standalone", node=self.node.name,
                                  pod=pod_id, parent=op_parent, order=order)
        if order != "standalone-first":
            standalone = standalone_pass()
            if use_async:
                # zero-stall capture: only the table snapshot happens
                # inside the outage window; serialize/filter/write run
                # against the frozen tables after the pod resumes
                image = None
                yield engine.sleep(min(self.node.spec.capture_fixed_s,
                                       self.node.spec.ckpt_fixed_s))
                yield from self.cluster.trace("agent.async_capture",
                                              node=self.node.name, pod=pod_id)
            else:
                image = pipeline.pack(standalone, sock_records, sock_fd_rows, devices,
                                      state=self.pipeline_state,
                                      serialize_bandwidth=self.node.spec.memcpy_bandwidth,
                                      chain_local=chain_local, proc_dirty=proc_dirty)
                t_enc = engine.now
                yield engine.sleep(self.node.spec.ckpt_fixed_s + _stage_seconds(image))
                self._emit_stage_spans(image, t_enc + self.node.spec.ckpt_fixed_s,
                                       pod_id, phase)
        t_standalone_done = engine.now
        yield from self.cluster.trace("agent.standalone", node=self.node.name, pod=pod_id)
        phase.end()

        # 3a/4a. finish only after 'continue' arrives.  The wait carries
        # its own deadline (sent by the Manager): if the Manager crashes
        # or is partitioned away, neither 'continue' nor 'abort' can ever
        # arrive, and the Agent must abort unilaterally rather than keep
        # the pod suspended forever.
        t_wait = engine.now
        phase = self.cluster.span("agent.phase.barrier", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        # continue-wait re-attach (HA Manager): while parked here the
        # session is addressable through the (op, pod) registry, so a
        # takeover Manager can deliver 'continue' or 'abort' over a
        # *different* connection when the original Manager is dead
        signal = Future(f"op-signal-{op_id}:{pod_id}")
        if op_id:
            self.op_waits[(op_id, pod_id)] = signal
        try:
            if wait_timeout > 0.0:
                waiter = engine.spawn(recv_msg(kernel, chan, fd),
                                      name=f"ckpt-wait@{self.node.name}")
                race = Future(f"ckpt-race-{op_id}:{pod_id}")
                waiter.finished.add_done_callback(
                    lambda f: race.set_result(("conn", f.result))
                    if not race.done else None)
                signal.add_done_callback(
                    lambda f: race.set_result(("side", f.result))
                    if not race.done else None)
                try:
                    in_time, arrived = yield engine.timeout(race, wait_timeout)
                except Exception:
                    in_time, arrived = True, None
                if not in_time or arrived is None:
                    reply = None
                else:
                    source, reply = arrived
                if not in_time or (arrived is not None and arrived[0] == "side"):
                    # timed out, or the side channel won: abandon the
                    # original connection's half-read recv
                    waiter.cancel()
                    chan.waiting = None
                    chan.blocked_on = None
            else:
                reply = yield from recv_msg(kernel, chan, fd)
        finally:
            if op_id:
                self.op_waits.pop((op_id, pod_id), None)
        if reply is None or reply.get("cmd") == "abort" or op_id in self.gc_ops:
            # Manager died, aborted, or already garbage-collected this
            # operation: resume the application gracefully
            self.cluster.observe(f"agent.barrier_wait_s.{self.node.name}",
                                 engine.now - t_wait)
            phase.end(status="aborted")
            self._abort_checkpoint(
                pod, net_window,
                dirty_consumer=CKPT_CONSUMER if track_dirty else None)
            yield from send_msg(kernel, chan, fd, {"type": "aborted", "pod": pod_id})
            return
        yield from self.cluster.trace("agent.continue_recv", node=self.node.name, pod=pod_id)
        self.cluster.observe(f"agent.barrier_wait_s.{self.node.name}",
                             engine.now - t_wait)
        if op_id in self.gc_ops:
            # the op died while a fault stalled us at the boundary above
            phase.end(status="aborted")
            self._abort_checkpoint(
                pod, net_window,
                dirty_consumer=CKPT_CONSUMER if track_dirty else None)
            yield from send_msg(kernel, chan, fd, {"type": "aborted", "pod": pod_id})
            return
        phase.end()

        # 3b/4. continue received: lift the block and commit locally
        phase = self.cluster.span("agent.phase.commit", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        if context == "snapshot":
            unblock_pod_network(stack, pod, net_window)
        else:
            # migration: silence and destroy the old pod before lifting
            # the filter so nothing stale can reach the restored peers
            pod.destroy()
            unblock_pod_network(stack, pod, net_window)

        # §5 optimization: redirect send-queue contents into the peers'
        # checkpoint streams, eliminating the post-restart re-send.  The
        # Manager's continue message carries the destinations (it alone
        # knows where each peer pod is migrating).
        redirect_out = reply.get("redirect_out", [])
        if redirect_out and image is not None:
            rec_by_id = {int(r["sock_id"]): r for r in sock_records}
            for entry in redirect_out:
                rec = rec_by_id.get(int(entry["sock_id"]))
                if rec is None:
                    continue
                trimmed = bytes(rec["send_data"][int(entry["discard"]):])
                rec["send_data"] = b""
                rec["send_redirected"] = True
                if trimmed:
                    yield from self._push_redirect(
                        entry["dst_node"], entry["peer_pod"],
                        int(entry["peer_sock_id"]), trimmed)
            # the image must reflect the stripped queues (re-pack, not
            # re-charged: the bytes were already serialized once; the
            # pipeline diffs against the *previous* epoch because the
            # first pack's base is only staged, not committed)
            repacked = pipeline.pack(standalone, sock_records, sock_fd_rows, devices,
                                     state=self.pipeline_state, chain_local=chain_local,
                                     proc_dirty=proc_dirty)
            repacked.stage_costs = image.stage_costs
            image = repacked
        t_resume = None
        cow_bytes = 0
        if use_async:
            # zero-stall: the pod resumes *here* — the outage window ends
            # before any codec work; serialize/filter run against the
            # frozen capture tables while the application runs on
            pod.resume()
            t_resume = engine.now
            for p in pod.processes():
                # copy-on-write window: bytes the resumed pod dirties
                # under the in-flight snapshot must be duplicated before
                # the encoder reads them
                p.memory.clear_dirty(COW_CONSUMER)
            phase.end(async_ckpt=True)
            post_enc = self.cluster.span("agent.post.encode",
                                         node=self.node.name, pod=pod_id,
                                         parent=op_parent, category="post")
            yield from self.cluster.trace("agent.async_encode",
                                          node=self.node.name, pod=pod_id)
            image = pipeline.pack(standalone, sock_records, sock_fd_rows,
                                  devices, state=self.pipeline_state,
                                  serialize_bandwidth=self.node.spec.memcpy_bandwidth,
                                  chain_local=chain_local, proc_dirty=proc_dirty)
            # the deferred slice of the fixed kernel work (descriptor
            # walks, serialization prep) runs here, against the frozen
            # tables, before the codec touches any bytes
            yield engine.sleep(max(0.0, self.node.spec.ckpt_fixed_s
                                   - self.node.spec.capture_fixed_s))
            t_enc = engine.now
            yield engine.sleep(_stage_seconds(image))
            self._emit_stage_spans(image, t_enc, pod_id, post_enc)
            async_pod = kernel.pods.get(pod_id)
            if async_pod is not None:
                for p in async_pod.processes():
                    cow_bytes += p.memory.dirty_in(COW_CONSUMER)
                    p.memory.reset_dirty(COW_CONSUMER)
            if cow_bytes:
                yield engine.sleep(cow_bytes / self.node.spec.memcpy_bandwidth)
            post_enc.end(nbytes=image.total_bytes, cow_bytes=cow_bytes)
        if proc_dirty is not None and image is not None:
            # stamp the measured dirty total on the image: the CAS dedup
            # model reads it to decide which accounted blocks re-hash
            image.acct_dirty_bytes = sum(
                sum(table.values()) for table in proc_dirty.values())
        if op_id not in self.gc_ops:
            self.pipeline_state.commit(pod_id)
            self.mem_sink.store(image)
            if track_dirty:
                commit_pod = kernel.pods.get(pod_id)
                if commit_pod is not None:
                    # the op is final on this node: the staged baseline
                    # clear becomes the next generation's starting point
                    for p in commit_pod.processes():
                        p.memory.commit_clear(CKPT_CONSUMER)
            if op_id:
                self.committed_ops[pod_id] = op_id
        elif use_async:
            # the op was garbage-collected while the encoder ran: the gc
            # already rolled the stores back; drop the staged base too
            self.pipeline_state.abandon(pod_id)

        # optional file-system snapshot, "taken immediately prior to
        # reactivating the pod" — point-in-time capture of the shared
        # storage the pod's chroot lives on, so restart can also roll
        # files back to the checkpointed instant
        snapshot_id = None
        if msg.get("fs_snapshot"):
            snap = self.cluster.snapshots.take(self.cluster.san, now=engine.now)
            snapshot_id = len(self.cluster.snapshots) - 1

        # 4. report done (with the per-stage pipeline breakdown: the
        # serialize / filter split happened above; the write to the sink
        # happens after resume, so its cost is reported as modeled)
        sink = self._sink_for(uri)
        stage_stats = list(image.stage_costs) + [sink.write_cost(image).as_stats()]
        record_stage_metrics(self.cluster, stage_stats)
        # live migration: the final stream only moves what the pre-copy
        # rounds left dirty; the encoded payload still travels whole
        stream_charge = None
        if live and uri.startswith("agent://"):
            stream_charge = min(image.accounted_bytes, residual)
        t_write = (stream_charge / sink.fabric_bandwidth
                   if stream_charge is not None else sink.write_delay(image))
        stats = {
            "t_suspend": t_suspended - t0,
            "t_network": t_net_done - t_suspended,
            "t_standalone": t_standalone_done - t_net_done,
            "t_local": engine.now - t0,
            "t_serialize": _stage_seconds(image, "serialize"),
            "t_filter": _stage_seconds(image, "filter"),
            "t_write": t_write,
            "image_bytes": image.total_bytes,
            "raw_image_bytes": image.raw_total_bytes,
            "encoded_bytes": image.encoded_bytes,
            "netstate_bytes": image.netstate_bytes,
            "sockets": len(sock_records),
            "fs_snapshot": snapshot_id,
            "filters": accepted_specs,
            "epoch": image.epoch,
            "stages": stage_stats,
        }
        if live:
            # keys present only in live mode so non-live wire traffic
            # (and thus every existing schedule) is unchanged
            stats["t_suspend_at"] = t0
            stats["residual_bytes"] = residual
        if use_async:
            # async-only keys, same conditional-key discipline: serial
            # wire traffic (and thus every existing schedule) is unchanged
            stats["t_suspend_window"] = t_resume - t0
            stats["t_encode"] = _stage_seconds(image)
            stats["cow_bytes"] = cow_bytes
        else:
            # the commit phase ends exactly where ``t_local`` is measured,
            # so the agent lane's phase durations sum to the reported
            # latency (the async path already ended it at resume — there
            # the phase sum is the outage window, not the full latency)
            phase.end(image_bytes=image.total_bytes)
        yield from send_msg(kernel, chan, fd, {
            "type": "done",
            "pod": pod_id,
            "status": "ok",
            "stats": stats,
        })

        # finalize (the async path resumed the pod before encoding)
        if context == "snapshot" and not use_async:
            pod.resume()
        if uri.startswith("agent://"):
            post = self.cluster.span("agent.post.stream", node=self.node.name,
                                     pod=pod_id, parent=op_parent,
                                     category="post")
            yield from self._stream_image(chan, fd, image, uri, sink,
                                          charge_bytes=stream_charge)
            if stream_charge is not None:
                post.annotate(residual_bytes=stream_charge)
            post.end(nbytes=image.total_bytes)
        elif uri.startswith(("file:", "cas:")):
            # flush to shared storage after the application resumed —
            # deliberately outside the checkpoint latency, per the paper
            # (a ``post`` span, excluded from phase reconciliation)
            post = self.cluster.span("agent.post.flush", node=self.node.name,
                                     pod=pod_id, parent=op_parent,
                                     category="post")
            if use_async:
                # stage-overlapped write-out: the SAN link ran while the
                # codec did (network never idle behind the compressor),
                # so only the write tail beyond the encode time remains
                yield from self.cluster.trace("agent.async_stream",
                                              node=self.node.name, pod=pod_id)
            if uri.startswith("cas:"):
                flushed = yield from self._flush_to_cas(
                    image, sink, op_id=op_id,
                    overlap_s=_stage_seconds(image) if use_async else 0.0)
            else:
                directives = yield from self.cluster.trace(
                    "agent.flush", node=self.node.name, pod=pod_id)
                flushed = yield from self._flush_to_file(
                    image, sink, op_id=op_id,
                    truncate=directives.get("truncate"),
                    overlap_s=_stage_seconds(image) if use_async else 0.0)
            post.end(status="ok" if flushed else "failed",
                     nbytes=image.total_bytes)
            if flushed:
                self.cluster.count("agent.flush.bytes", image.total_bytes)
            yield from send_msg(kernel, chan, fd, {
                "type": "flushed" if flushed else "flush-failed", "pod": pod_id})

    def _emit_stage_spans(self, image: PodImage, t_start: float, pod_id: str,
                          parent) -> float:
        """Subdivide a modeled pack sleep into per-stage ``stage`` spans.

        The Agent sleeps once for the whole pipeline; the per-stage costs
        recorded on the image say how that sleep decomposes, and this
        replays them as explicit-time spans so exported traces show the
        serialize / filter split.  Returns the time after the last stage.
        """
        t = t_start
        for cost in image.stage_costs:
            stage = cost.get("stage", "?")
            if stage.startswith("write"):
                continue  # the write happens later, at the sink
            seconds = float(cost.get("seconds", 0.0))
            self.cluster.span_at(f"stage.{stage}", t, t + seconds,
                                 node=self.node.name, pod=pod_id,
                                 parent=parent,
                                 in_bytes=cost.get("in_bytes"),
                                 out_bytes=cost.get("out_bytes"))
            t += seconds
        return t

    def _abort_checkpoint(self, pod: Pod, window=NULL_SPAN,
                          dirty_consumer: Optional[str] = None) -> None:
        if dirty_consumer is not None:
            # fold the staged baseline clear back: nothing was committed,
            # so the generation still belongs to the next checkpoint
            for p in pod.processes():
                p.memory.abort_clear(dirty_consumer)
        unblock_pod_network(self.kernel.netstack, pod, window, status="aborted")
        pod.resume()

    def _sink_for(self, uri: str):
        """The pipeline sink an URI lands in (memory, SAN file, stream)."""
        if uri.startswith("agent://"):
            return StreamSink(self.cluster.fabric.bandwidth)
        if uri.startswith("file:"):
            return FileSink(self.cluster.san, self.kernel.vfs, uri[len("file:"):])
        if uri.startswith("cas:"):
            from ..storage.cas import CasSink
            return CasSink(self.cluster.san, self.kernel.vfs, uri[len("cas:"):])
        return self.mem_sink

    def _stream_image(self, chan, fd, image: PodImage, uri: str, sink: StreamSink,
                      charge_bytes: Optional[int] = None):
        """Direct migration: push the image to the destination Agent.

        The encoded payload travels over the simulated network for real;
        the accounted (ballast) memory is charged as streaming time at
        fabric bandwidth without materializing the bytes — so a compress
        stage directly shortens the stream.  ``charge_bytes`` overrides
        the accounted charge (live migration streams only the residual
        the pre-copy rounds left dirty).
        """
        kernel = self.kernel
        target = self.cluster.node_by_name(uri[len("agent://"):])
        tchan = kernel.host_channel("agent-push")
        tfd = yield kernel.host_call(tchan, "socket", "tcp")
        rc = yield kernel.host_call(tchan, "connect", tfd, (target.ip, AGENT_PORT))
        if isinstance(rc, Errno):
            yield from send_msg(kernel, chan, fd, {"type": "error", "error": f"push connect: {rc.name}"})
            return
        delay = (charge_bytes / sink.fabric_bandwidth
                 if charge_bytes is not None else sink.write_delay(image))
        yield self.engine.sleep(delay)
        push = {
            "cmd": "push_image",
            "pod": image.pod_id,
            "data": image.data,
            "accounted": image.accounted_bytes,
            "netstate": image.netstate_bytes,
            "filters": image.filters,
            "epoch": image.epoch,
            "raw_bytes": image.raw_encoded_bytes,
            "raw_accounted": image.raw_accounted_bytes,
        }
        if charge_bytes is not None:
            # live migration only (non-live wire traffic stays identical):
            # tell the destination how much accounted memory this final
            # stream actually moved, so its restore charges placement for
            # the residual — the pre-copied pages are already in place
            push["placed"] = int(charge_bytes)
        yield from send_msg(kernel, tchan, tfd, push)
        ack = yield from recv_msg(kernel, tchan, tfd)
        yield kernel.host_call(tchan, "close", tfd)
        status = "streamed" if ack and ack.get("type") == "stored" else "stream-failed"
        yield from send_msg(kernel, chan, fd, {"type": status, "pod": image.pod_id})

    # ------------------------------------------------------------------
    # pre-copy live migration (source + destination sides)
    # ------------------------------------------------------------------
    def _do_precopy(self, chan, fd, msg):
        """One pre-copy round: ship the pod's dirty working set to the
        destination Agent while the pod keeps running.

        Round 1 ships the full resident set; later rounds ship only the
        bytes dirtied since the previous round.  Dirty counters are
        cleared when the copy *starts* — writes landing while the copy
        is in flight belong to the next round (or the final residual).
        """
        kernel = self.kernel
        engine = self.engine
        pod_id = msg["pod"]
        dst = msg["dst"]
        round_no = int(msg.get("round", 1))
        op_id = int(msg.get("op_id", 0))
        pod: Optional[Pod] = kernel.pods.get(pod_id)
        if pod is None:
            yield from send_msg(kernel, chan, fd, {
                "type": "error", "error": f"no pod {pod_id!r}"})
            return
        t0 = engine.now
        phase = self.cluster.span("agent.phase.precopy-round",
                                  node=self.node.name, pod=pod_id,
                                  parent=("op", op_id), round=round_no)
        yield from self.cluster.trace("agent.precopy", node=self.node.name,
                                      pod=pod_id)
        procs = pod.processes()
        if round_no <= 1:
            shipped = sum(p.memory.rss for p in procs)
        else:
            shipped = sum(p.memory.dirty_in(PRECOPY_CONSUMER) for p in procs)
        # the baseline clear is staged, not final: writes landing while
        # the copy is in flight accrue to the next generation, and a
        # round the destination never acknowledged folds its dirtiness
        # back in (commit/abort below) instead of losing it
        for p in procs:
            p.memory.begin_clear(PRECOPY_CONSUMER)
        ok = yield from self._push_precopy(dst, pod_id, shipped, round_no, op_id)
        # the pod ran (and wrote) for the whole transfer; what it dirtied
        # meanwhile is the working set the next round must move
        pod = kernel.pods.get(pod_id)
        if pod is not None:
            acked = ok and op_id not in self.gc_ops
            for p in pod.processes():
                if acked:
                    p.memory.commit_clear(PRECOPY_CONSUMER)
                else:
                    p.memory.abort_clear(PRECOPY_CONSUMER)
        dirty_after = (sum(p.memory.dirty_in(PRECOPY_CONSUMER)
                           for p in pod.processes())
                       if pod is not None else 0)
        if not ok or pod is None or op_id in self.gc_ops:
            phase.end(status="failed", shipped_bytes=shipped)
            yield from send_msg(kernel, chan, fd, {
                "type": "precopy_done", "pod": pod_id, "status": "failed",
                "round": round_no})
            return
        phase.end(shipped_bytes=shipped, dirty_bytes=dirty_after, rss=sum(
            p.memory.rss for p in pod.processes()))
        self.cluster.count("agent.precopy.bytes", shipped)
        yield from send_msg(kernel, chan, fd, {
            "type": "precopy_done", "pod": pod_id, "status": "ok",
            "round": round_no,
            "stats": {
                "round": round_no,
                "shipped_bytes": shipped,
                "dirty_bytes": dirty_after,
                "rss": sum(p.memory.rss for p in pod.processes()),
                "seconds": engine.now - t0,
            },
        })

    def _push_precopy(self, dst_node: str, pod_id: str, nbytes: int,
                      round_no: int, op_id: int):
        """Stream one round's bytes to the destination Agent; True iff
        the destination acknowledged the round."""
        kernel = self.kernel
        try:
            target = self.cluster.node_by_name(dst_node)
        except Exception:
            return False
        tchan = kernel.host_channel("agent-precopy")
        tfd = yield kernel.host_call(tchan, "socket", "tcp")
        rc = yield kernel.host_call(tchan, "connect", tfd, (target.ip, AGENT_PORT))
        if isinstance(rc, Errno):
            return False
        # accounted transfer at fabric bandwidth, like the image stream
        yield self.engine.sleep(nbytes / self.cluster.fabric.bandwidth)
        sent = yield from send_msg(kernel, tchan, tfd, {
            "cmd": "precopy_push", "pod": pod_id, "bytes": int(nbytes),
            "round": round_no, "op_id": op_id,
        })
        ack = (yield from recv_msg(kernel, tchan, tfd)) if sent else None
        yield kernel.host_call(tchan, "close", tfd)
        return bool(ack and ack.get("type") == "stored")

    def _store_precopy(self, msg) -> None:
        """Destination side: account one received pre-copy round."""
        op_id = int(msg.get("op_id", 0))
        if op_id and op_id in self.gc_ops:
            return  # aborted migration: don't accumulate stale rounds
        entry = self.precopy_store.setdefault(
            msg["pod"], {"op_id": op_id, "bytes": 0, "rounds": 0})
        if entry.get("op_id") != op_id:
            # a new migration attempt supersedes any stale accounting
            entry.update({"op_id": op_id, "bytes": 0, "rounds": 0})
        entry["bytes"] += int(msg.get("bytes", 0))
        entry["rounds"] += 1

    def _push_redirect(self, dst_node: str, peer_pod: str, peer_sock_id: int,
                       data: bytes):
        """Ship redirected send-queue bytes straight to the destination
        Agent of the peer pod (one transfer instead of two)."""
        kernel = self.kernel
        target = self.cluster.node_by_name(dst_node)
        tchan = kernel.host_channel("agent-redirect")
        tfd = yield kernel.host_call(tchan, "socket", "tcp")
        rc = yield kernel.host_call(tchan, "connect", tfd, (target.ip, AGENT_PORT))
        if isinstance(rc, Errno):
            return
        yield from send_msg(kernel, tchan, tfd, {
            "cmd": "push_redirect", "pod": peer_pod,
            "sock_id": peer_sock_id, "data": data,
        })
        yield from recv_msg(kernel, tchan, tfd)
        yield kernel.host_call(tchan, "close", tfd)

    def _store_pushed(self, msg) -> None:
        if msg.get("placed") is not None:
            # stop-and-copy residual of a live migration whose pre-copy
            # rounds landed here; the restore charge uses it
            entry = self.precopy_store.get(msg["pod"])
            if entry is not None:
                entry["placed"] = int(msg["placed"])
        self.mem_sink.store(PodImage(
            pod_id=msg["pod"],
            data=bytes(msg["data"]),
            encoded_bytes=len(msg["data"]),
            accounted_bytes=int(msg["accounted"]),
            netstate_bytes=int(msg["netstate"]),
            filters=list(msg.get("filters") or []),
            epoch=int(msg.get("epoch", 0)),
            raw_encoded_bytes=msg.get("raw_bytes"),
            raw_accounted_bytes=msg.get("raw_accounted"),
        ))

    def _flush_to_file(self, image: PodImage, sink: FileSink,
                       op_id: int = 0, truncate: Optional[float] = None,
                       overlap_s: float = 0.0):
        """Write the image to shared storage; True iff the flush published
        a complete, loadable container.

        The write pays any injected SAN stall, honors a ``truncate``
        fault directive (cut the container short), refuses to publish
        for a garbage-collected operation, and *verifies by reading the
        container back* — a partial write is unlinked and reported as
        ``flush-failed`` rather than left visible as restartable.

        ``overlap_s`` is codec time the write already ran behind (the
        async path's stage overlap): the flush charges only
        ``max(0, write + stall - overlap)`` — the tail of the slower of
        the two pipelines.
        """
        stall = self.cluster.san.consume_stall()
        yield self.engine.sleep(max(0.0, sink.write_delay(image) + stall - overlap_s))
        if op_id and op_id in self.gc_ops:
            # the Manager aborted and collected this op while we slept
            return False
        sink.store(image, truncate=truncate)
        try:
            sink.load(image.pod_id)
        except RestartError:
            sink.unlink()
            return False
        return True

    def _flush_to_cas(self, image: PodImage, sink, op_id: int = 0,
                      overlap_s: float = 0.0):
        """Flush into the content-addressed store; True iff the staged
        generation published complete and loadable.

        Same discipline as :meth:`_flush_to_file` with the write split at
        the CAS commit point: ``stage`` uploads the chunks the index is
        missing (a ``truncate`` fault directive cuts that upload short),
        ``publish`` swaps the recipe in, and read-back validation rolls a
        partial generation back — restoring the previous one — rather
        than leaving it visible as restartable.  Faults can land on the
        ``cas.write`` and ``cas.commit`` crossings between the steps.
        """
        stall = self.cluster.san.consume_stall()
        span = self.cluster.span("cas.flush", node=self.node.name,
                                 pod=image.pod_id, category="cas",
                                 parent=("op", op_id))
        directives = yield from self.cluster.trace(
            "cas.write", node=self.node.name, pod=image.pod_id)
        yield self.engine.sleep(max(0.0, sink.write_delay(image) + stall
                                    - overlap_s))
        if op_id and op_id in self.gc_ops:
            # the Manager aborted and collected this op while we slept
            span.end(status="aborted")
            return False
        sink.stage(image, op_id=op_id, truncate=directives.get("truncate"))
        directives = yield from self.cluster.trace(
            "cas.commit", node=self.node.name, pod=image.pod_id)
        if op_id and op_id in self.gc_ops:
            # collected at the commit crossing: the stage is already an
            # orphan — drop it instead of publishing for a dead op
            sink.rollback(op_id)
            span.end(status="aborted")
            return False
        if not sink.publish(op_id):
            # the pending stage at the path is no longer ours (an
            # interleaved op replaced it, or it was swept): publishing
            # it would promote a rival's — possibly truncated — stage
            # under our read-back, so fail without touching the
            # published generation
            span.end(status="failed")
            return False
        try:
            sink.load(image.pod_id)
        except RestartError:
            # partial upload published: roll back to the previous
            # generation (op-keyed, so a replayed GC cannot undo more)
            sink.rollback(op_id)
            span.end(status="failed")
            return False
        span.end(status="ok", nbytes=image.total_bytes)
        return True

    def _signal_op(self, op_id: int, msg: Dict[str, Any]) -> None:
        """Resolve every session future parked at op ``op_id``'s barrier
        (each session gets its own copy of the synthetic reply)."""
        for (op, _pod), fut in sorted(self.op_waits.items()):
            if op == op_id and not fut.done:
                fut.set_result(dict(msg))

    def _gc_pod(self, pod_id: str) -> None:
        """Roll local stores back past anything a failed op staged or
        committed for ``pod_id``."""
        self.mem_sink.rollback(pod_id)
        if not self.pipeline_state.rollback(pod_id):
            self.pipeline_state.abandon(pod_id)
        self.committed_ops.pop(pod_id, None)
        # drop pre-copy accounting from an aborted live migration
        self.precopy_store.pop(pod_id, None)
        pod = self.kernel.pods.get(pod_id)
        if pod is not None:
            for p in pod.processes():
                # a rolled-back commit cannot restore its exact pre-clear
                # counters: fall back to fully dirty — the next epoch
                # over-charges rather than undercounts
                p.memory.reset_dirty(CKPT_CONSUMER)

    def _load_chain(self, pod_id: str, uri: str) -> List[PodImage]:
        """Load a checkpoint image chain (epoch order; length 1 unless
        incremental checkpoints extended it)."""
        if uri in ("mem", "") or uri.startswith("agent://"):
            chain = self.mem_sink.load(pod_id)
            if not chain:
                raise RestartError(f"no in-memory image for pod {pod_id!r} on {self.node.name}")
            return chain
        if uri.startswith(("file:", "cas:")):
            return self._sink_for(uri).load(pod_id)
        raise RestartError(f"unsupported URI {uri!r}")

    # ------------------------------------------------------------------
    # restart (Figure 3, Agent side)
    # ------------------------------------------------------------------
    def _do_load_meta(self, chan, fd, msg):
        """Phase 0 of restart: load the image chain, report its meta-data."""
        kernel = self.kernel
        op_parent = ("op", int(msg.get("op_id", 0)))
        phase = self.cluster.span("agent.phase.load_meta", node=self.node.name,
                                  pod=msg.get("pod"), parent=op_parent)
        yield from self.cluster.trace("agent.load_meta", node=self.node.name,
                                      pod=msg.get("pod"))
        try:
            chain = self._load_chain(msg["pod"], msg["uri"])
        except RestartError as err:
            phase.end(status="failed")
            yield from send_msg(kernel, chan, fd, {"type": "error", "error": str(err)})
            return
        if msg["uri"].startswith("file:") and not msg.get("preloaded", True):
            yield self.engine.sleep(self.cluster.san.transfer_delay(
                sum(img.total_bytes for img in chain)))
        try:
            reassembled = ImagePipeline.reassemble(chain, state=self.pipeline_state)
        except (CodecError, CheckpointError, RestartError, KeyError) as err:
            # a corrupt or partial chain must fail the restart loudly,
            # not hang the session
            phase.end(status="failed")
            yield from send_msg(kernel, chan, fd, {
                "type": "error",
                "error": f"image chain for {msg['pod']!r} is not restorable: {err}",
            })
            return
        meta = build_pod_meta(msg["pod"], reassembled.payload["sockets"])
        self.cluster.count("agent.restore.bytes",
                           sum(img.total_bytes for img in chain))
        phase.end(chain_epochs=len(chain))
        yield from send_msg(kernel, chan, fd, {
            "type": "meta",
            "pod": msg["pod"],
            "meta": meta,
            "vip": reassembled.payload["standalone"]["vip"],
            "filters": chain[-1].filters,
        })
        # keep the session open: the restart command follows on this conn
        msg2 = yield from recv_msg(kernel, chan, fd)
        if msg2 is None or msg2.get("cmd") != "restart":
            return
        yield from self._do_restart(chan, fd, msg2, chain=chain, reassembled=reassembled)

    def _do_restart(self, chan, fd, msg, chain: Optional[List[PodImage]] = None,
                    reassembled: Optional[ReassembledImage] = None):
        kernel = self.kernel
        engine = self.engine
        pod_id = msg["pod"]
        t0 = engine.now
        op_parent = ("op", int(msg.get("op_id", 0)))
        if chain is None:
            chain = self._load_chain(pod_id, msg.get("uri", "mem"))
        if reassembled is None:
            reassembled = ImagePipeline.reassemble(chain, state=self.pipeline_state)
        payload = reassembled.payload
        standalone = payload["standalone"]
        records: List[Dict[str, Any]] = payload["sockets"]
        rec_by_id = {int(r["sock_id"]): r for r in records}
        listeners = msg.get("listeners", [])
        schedule = msg.get("schedule", [])
        redirects: Dict[str, bytes] = msg.get("redirects", {})
        timevirt_on = bool(msg.get("time_virtualization", True))

        # 1. create a new (empty) pod
        phase = self.cluster.span("agent.phase.connectivity", node=self.node.name,
                                  pod=pod_id, parent=op_parent)
        pod = Pod.create(kernel, pod_id, msg.get("vip", standalone["vip"]), self.cluster.vnet)

        # 2. recover network connectivity: two threads of execution
        yield from self.cluster.trace("agent.connectivity", node=self.node.name,
                                      pod=pod_id)
        socket_map: Dict[int, Any] = {}
        accept_entries = [e for e in schedule if e["role"] == "accept"]
        connect_entries = [e for e in schedule if e["role"] == "connect"]
        defer_entries = [e for e in schedule if e["role"] == "defer"]
        if msg.get("recovery_mode", "two-thread") == "sequential":
            # Ablation: a single thread of execution that accepts first,
            # then connects.  On cyclic topologies every Agent sits in
            # accept while the connects that would satisfy it are queued
            # behind — the deadlock the two-thread design exists to avoid.
            yield from self._acceptor_thread(pod, listeners, accept_entries,
                                             rec_by_id, socket_map)
            yield from self._connector_thread(pod, connect_entries, defer_entries,
                                              socket_map)
        else:
            acceptor = engine.spawn(
                self._acceptor_thread(pod, listeners, accept_entries, rec_by_id, socket_map),
                name=f"restart-accept@{pod_id}")
            connector = engine.spawn(
                self._connector_thread(pod, connect_entries, defer_entries, socket_map),
                name=f"restart-connect@{pod_id}")
            yield all_of([acceptor.finished, connector.finished])
        t_conn_done = engine.now
        phase.end(connections=len(schedule))

        # 3'. restore network state on the recovered connections
        phase = self.cluster.span("agent.phase.netrestore", node=self.node.name,
                                  pod=pod_id, parent=op_parent)

        # non-connection sockets (datagram, unconnected TCP) are rebuilt
        # directly — no peer coordination needed
        chan2 = kernel.host_channel("restart-misc")
        orphan_ids = {int(e["sock_id"]) for e in schedule if e["role"] == "orphan"}
        for rec in records:
            sid = int(rec["sock_id"])
            if sid in socket_map:
                continue
            if rec["proto"] == "tcp" and (rec["remote"] is not None or rec["listening"]) \
                    and sid not in orphan_ids:
                continue  # handled by the threads (or a pending child)
            sfd = yield kernel.host_call(chan2, "socket", rec["proto"])
            if rec["local"] is not None:
                yield kernel.host_call(chan2, "bind", sfd, tuple(rec["local"]))
            socket_map[sid] = chan2.fds[sfd]

        # 3. restore network state
        inject_bytes = 0
        for rec in records:
            sid = int(rec["sock_id"])
            sock = socket_map.get(sid)
            if sock is None:
                continue
            entry = next((e for e in schedule if int(e["sock_id"]) == sid), None)
            discard = int(entry["send_discard"]) if entry else 0
            # redirected peer send-queue data, delivered either directly
            # by the migrating peer's agent or (legacy path) via the
            # Manager's restart command
            extra = self.redirect_store.pop((pod_id, sid), b"") or bytes(redirects.get(str(sid), b""))
            rec = dict(rec)
            rec.setdefault("send_redirected", False)
            if entry is not None and entry["role"] == "orphan":
                # peer already gone: restore the unread data and EOF, but
                # there is no connection to re-send the send queue on
                rec["send_data"] = b""
                rec["fin_sent"] = False
                restore_socket_state(kernel.netstack, sock, rec)
                sock.rd_closed = True
                continue
            restore_socket_state(kernel.netstack, sock, rec, send_discard=discard,
                                 redirect_extra=extra)
            inject_bytes += len(rec["recv_data"]) + len(rec["send_data"]) + len(extra)
            # re-queue connections that were accepted by the kernel but
            # not yet by the application
            if rec.get("pending_accept_of") is not None:
                listener = socket_map.get(int(rec["pending_accept_of"]))
                if listener is not None:
                    sock.listener = listener
                    listener.accept_q.append(sock)
        yield engine.sleep(RESTORE_PER_SOCKET * max(1, len(records))
                           + inject_bytes / self.node.spec.memcpy_bandwidth)
        t_net_done = engine.now
        phase.end(inject_bytes=inject_bytes, sockets=len(records))

        # 4. standalone restart: undo the filter chain (decompress /
        # delta reassembly), then rebuild the full pre-filter state
        phase = self.cluster.span("agent.phase.standalone_restore",
                                  node=self.node.name, pod=pod_id,
                                  parent=op_parent)
        restore_bytes = reassembled.full_total_bytes
        pre = self.precopy_store.get(pod_id)
        if pre is not None and pre.get("rounds") and pre.get("placed") is not None:
            # live migration: the pre-copy rounds wrote the bulk of the
            # memory into place while the pod still ran at the source, so
            # the outage only re-places the stop-and-copy residual (plus
            # the non-memory payload: registers, sockets, devices)
            last = chain[-1]
            mem_bytes = ((last.raw_accounted_bytes if last.filters
                          else last.accounted_bytes) or 0)
            placed = min(mem_bytes, int(pre["placed"]))
            restore_bytes = restore_bytes - mem_bytes + placed
        yield engine.sleep(self.node.spec.restart_fixed_s
                           + reassembled.decode_seconds
                           + restore_bytes / self.node.spec.restore_bandwidth)
        restore_pod_standalone(pod, standalone, socket_map, payload["socket_fds"],
                               time_virtualization=timevirt_on)
        devices = payload.get("devices", {"states": [], "fd_rows": []})
        restore_pod_devices(pod, devices["states"], devices["fd_rows"])
        activate_pod(pod)
        # the pod runs here now: any live-migration pre-copy accounting
        # served its purpose and must not leak into a later migration
        self.precopy_store.pop(pod_id, None)
        t_done = engine.now
        phase.end(image_bytes=reassembled.full_total_bytes)

        # 5. report done
        stats = {
            "t_connectivity": t_conn_done - t0,
            "t_network": t_net_done - t0,
            "t_standalone": t_done - t_net_done,
            "t_local": t_done - t0,
            "t_unfilter": reassembled.decode_seconds,
            "image_bytes": reassembled.full_total_bytes,
            "netstate_bytes": chain[-1].netstate_bytes,
            "chain_epochs": len(chain),
            "sockets": len(records),
        }
        if restore_bytes != reassembled.full_total_bytes:
            # live-only key: how much the outage actually re-placed
            stats["restored_bytes"] = restore_bytes
        yield from send_msg(kernel, chan, fd, {
            "type": "done",
            "pod": pod_id,
            "status": "ok",
            "stats": stats,
        })

    def _acceptor_thread(self, pod: Pod, listeners, accept_entries, rec_by_id, socket_map):
        """Restart thread #1: accept all scheduled incoming connections."""
        kernel = self.kernel
        # recreate application listeners first (they must exist for port
        # inheritance), plus temporary listeners for orphaned accept ports
        lchan = kernel.host_channel("restart-listen")
        by_port: Dict[Tuple[str, int], Any] = {}
        temp_fds: List[int] = []
        for lrec in listeners:
            ip, port = lrec["local"]
            lfd = yield kernel.host_call(lchan, "socket", "tcp")
            yield kernel.host_call(lchan, "setsockopt", lfd, "SO_REUSEADDR", 1)
            yield kernel.host_call(lchan, "bind", lfd, (ip, int(port)))
            yield kernel.host_call(lchan, "listen", lfd, 64)
            sock = lchan.fds[lfd]
            rec = rec_by_id.get(int(lrec["sock_id"]))
            if rec is not None:
                restore_socket_state(kernel.netstack, sock, rec)
            socket_map[int(lrec["sock_id"])] = sock
            by_port[(ip, int(port))] = (lfd, sock, False)
        for entry in accept_entries:
            key = (entry["src"][0], int(entry["src"][1]))
            if key not in by_port:
                lfd = yield kernel.host_call(lchan, "socket", "tcp")
                yield kernel.host_call(lchan, "setsockopt", lfd, "SO_REUSEADDR", 1)
                yield kernel.host_call(lchan, "bind", lfd, key)
                yield kernel.host_call(lchan, "listen", lfd, 64)
                by_port[key] = (lfd, lchan.fds[lfd], True)
                temp_fds.append(lfd)

        # group expected connections by listening port; one sub-task per
        # listener keeps accepts concurrent across ports
        groups: Dict[Tuple[str, int], List[dict]] = {}
        for entry in accept_entries:
            groups.setdefault((entry["src"][0], int(entry["src"][1])), []).append(entry)

        def accept_group(lfd: int, expected: List[dict]):
            gchan = kernel.host_channel("restart-accept")
            # accept on the shared listener object through a dedicated
            # channel: move a duplicate fd reference into it (keeping fd
            # allocation clear of the injected number)
            gchan.fds[lfd] = lchan.fds[lfd]
            gchan.next_fd = max(gchan.next_fd, lfd + 1)
            want = {tuple(e["dst"]): e for e in expected}
            while want:
                result = yield kernel.host_call(gchan, "accept", lfd)
                if isinstance(result, Errno):
                    raise RestartError(f"accept failed: {result.name}")
                newfd, peer = result
                entry = want.pop(tuple(peer), None)
                if entry is None:
                    continue  # unscheduled connection: ignore
                socket_map[int(entry["sock_id"])] = gchan.fds[newfd]

        tasks = [self.engine.spawn(accept_group(lfd, group),
                                   name=f"accept-{port}")
                 for (ip, port), group in groups.items()
                 for lfd in [by_port[(ip, port)][0]]]
        if tasks:
            yield all_of([t.finished for t in tasks])
        # temporary listeners served their purpose
        for lfd in temp_fds:
            yield kernel.host_call(lchan, "close", lfd)

    def _connector_thread(self, pod: Pod, connect_entries, defer_entries, socket_map):
        """Restart thread #2: initiate all scheduled outgoing connections."""
        kernel = self.kernel
        chan = kernel.host_channel("restart-connect")
        for entry in connect_entries:
            while True:
                sfd = yield kernel.host_call(chan, "socket", "tcp")
                yield kernel.host_call(chan, "setsockopt", sfd, "SO_REUSEADDR", 1)
                # bind the original source port: endpoints must match the
                # checkpointed connection exactly
                yield kernel.host_call(chan, "bind", sfd, tuple(entry["src"]))
                rc = yield kernel.host_call(chan, "connect", sfd, tuple(entry["dst"]))
                if not isinstance(rc, Errno):
                    socket_map[int(entry["sock_id"])] = chan.fds[sfd]
                    del chan.fds[sfd]  # ownership moves to the socket map
                    break
                # the peer's listener may not be up yet: retry
                yield kernel.host_call(chan, "close", sfd)
                yield self.engine.sleep(CONNECT_RETRY)
        for entry in defer_entries:
            # a connection that was still mid-handshake at checkpoint:
            # recreate the bound socket; the process's re-issued connect
            # syscall will drive the handshake itself
            sfd = yield kernel.host_call(chan, "socket", "tcp")
            yield kernel.host_call(chan, "bind", sfd, tuple(entry["src"]))
            socket_map[int(entry["sock_id"])] = chan.fds[sfd]
            del chan.fds[sfd]


def deploy_agents(cluster: Cluster) -> Dict[str, Agent]:
    """Start one Agent per node; returns them by node name."""
    agents = {}
    for node in cluster.nodes:
        agent = Agent(cluster, node)
        agent.start()
        agents[node.name] = agent
    return agents
