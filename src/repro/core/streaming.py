"""Direct migration: checkpoint streamed node-to-node, then restart.

"ZapC can also directly stream checkpoint data from one set of nodes to
another, enabling direct migration of a distributed application to a
new set of nodes without saving and restoring state from secondary
storage."  A migration is a checkpoint whose URIs point at the
destination Agents (``agent://<node>``), followed by a restart from the
destinations' in-memory stores.  Because pods are the unit of migration,
N source nodes may map onto M destination nodes with N ≠ M.

Live (pre-copy) migration layers the classic iterative scheme (Clark et
al., NSDI '05; CRIU's iterative pre-dump) on top: while the pods keep
running, round 1 ships the full resident set and later rounds ship only
the bytes dirtied since the previous round; the stop-and-copy pass above
then runs for the small residual only, so downtime shrinks to the final
round instead of the whole transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.tasks import Task
from .manager import Manager, OpResult

#: (source node, pod, destination node)
Move = Tuple[str, str, str]

#: Pre-copy defaults: round cap and the dirty-byte threshold below which
#: the residual is small enough to stop-and-copy.
DEFAULT_PRECOPY_ROUNDS = 8
DEFAULT_DIRTY_THRESHOLD = 1_000_000


@dataclass
class MigrationResult:
    """Both halves of a migration, for reporting."""

    checkpoint: OpResult
    restart: OpResult
    #: True when the migration ran pre-copy rounds before stop-and-copy.
    live: bool = False
    #: Per-round byte accounting, one dict per executed pre-copy round:
    #: ``{"round", "shipped_bytes", "dirty_bytes", "seconds", "pods"}``.
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    #: Why pre-copy stopped before converging (None when it converged or
    #: never ran): ``"round-cap"``, ``"non-converging"``, or
    #: ``"precopy-failed"``.
    bailout: Optional[str] = None
    #: When the migration was invoked (pre-copy rounds included).
    t_invoke: float = 0.0

    @property
    def ok(self) -> bool:
        return self.checkpoint.ok and self.restart.ok

    @property
    def duration(self) -> float:
        """Stop-and-copy window: checkpoint invocation to every pod
        running at its destination.  Excludes pre-copy rounds (the
        application keeps running through those); see :attr:`total_time`
        for the whole migration and :attr:`downtime` for the outage."""
        return self.restart.t_end - self.checkpoint.t_start

    @property
    def total_time(self) -> float:
        """Migration invocation (first pre-copy round included) to every
        pod running at its destination."""
        return self.restart.t_end - self.t_invoke

    @property
    def downtime(self) -> float:
        """Application outage: first pod suspended at the source to every
        pod running at its destination.

        Live checkpoints report the suspend instant per pod; without it
        (non-live migrations) the whole stop-and-copy window is downtime.
        """
        suspend_ats = [stats["t_suspend_at"]
                       for stats in self.checkpoint.pods.values()
                       if "t_suspend_at" in stats]
        t_down = min(suspend_ats) if suspend_ats else self.checkpoint.t_start
        return self.restart.t_end - t_down

    @property
    def precopy_bytes(self) -> int:
        """Total bytes shipped by all pre-copy rounds."""
        return sum(r["shipped_bytes"] for r in self.rounds)


def migrate_task(manager: Manager, moves: List[Move], redirect: bool = False,
                 time_virtualization: bool = True, deadline: float = 120.0,
                 recovery_mode: str = "two-thread", filters=None,
                 live: bool = False,
                 precopy_rounds: int = DEFAULT_PRECOPY_ROUNDS,
                 dirty_threshold: int = DEFAULT_DIRTY_THRESHOLD,
                 timeouts=None):
    """Generator orchestrating a migration (run as a host task).

    ``redirect`` turns on the send-queue redirect optimization: instead
    of re-transmitting each socket's send queue over the re-established
    connection after restart, the data is merged into the peer's
    checkpoint stream and appended to the peer's alternate receive queue
    — "merging both into a single transfer".

    ``filters`` requests an image-pipeline chain for the checkpoint half;
    a compress stage directly shortens the node-to-node stream.  A delta
    stage degrades to self-contained output here: the destination Agent
    holds no base to patch, so the source emits full records (the
    pipeline's ``chain_local`` rule).

    ``live`` runs iterative pre-copy first: up to ``precopy_rounds``
    rounds ship memory while the pods stay running, ending early once
    the dirty residual falls to ``dirty_threshold`` bytes or the
    writable working set stops converging (a round dirties at least as
    much as it shipped).  Either way the protocol then falls through to
    the stop-and-copy pass above — with converged pre-copy that pass
    streams only the residual, which is what shrinks downtime.
    """
    engine = manager.cluster.engine
    t_invoke = engine.now
    rounds_log: List[Dict[str, Any]] = []
    bailout: Optional[str] = None

    if live and moves:
        # the migration gets its own operation id so every pre-copy span
        # (manager and agent side) hangs off one "manager.migrate" op
        mig_op = manager.new_op_id()
        op_span = manager.cluster.span("manager.migrate", category="op",
                                       key=("op", mig_op), op=mig_op,
                                       pods=len(moves), live=True)
        converged = False
        for round_no in range(1, max(1, int(precopy_rounds)) + 1):
            t_round = engine.now
            stats, errors = yield from manager.precopy_round(
                moves, round_no, op_id=mig_op, timeouts=timeouts,
                deadline=deadline)
            if errors or len(stats) < len(moves):
                bailout = "precopy-failed"
                break
            shipped = sum(s["shipped_bytes"] for s in stats.values())
            dirty = sum(s["dirty_bytes"] for s in stats.values())
            rounds_log.append({
                "round": round_no,
                "shipped_bytes": shipped,
                "dirty_bytes": dirty,
                "seconds": engine.now - t_round,
                "pods": stats,
            })
            if dirty <= int(dirty_threshold):
                converged = True
                break
            if round_no >= 2 and dirty >= shipped:
                # the working set regrows at least as fast as the fabric
                # drains it; more rounds only burn bandwidth
                bailout = "non-converging"
                break
        if not converged and bailout is None:
            bailout = "round-cap"
        op_span.end(status="ok" if converged else (bailout or "ok"),
                    rounds=len(rounds_log),
                    precopy_bytes=sum(r["shipped_bytes"] for r in rounds_log))

    # the per-consumer baseline clears are ack-gated (a failed round
    # folds its unacknowledged dirtiness back in), so the residual is
    # trustworthy even after a failed pre-copy round
    ckpt_live = live
    ckpt_targets = [(src, pod, f"agent://{dst}") for src, pod, dst in moves]
    redirect_moves = {pod: dst for _src, pod, dst in moves} if redirect else None
    ckpt = yield from manager.checkpoint_task(
        ckpt_targets, context="migrate", deadline=deadline,
        redirect_moves=redirect_moves, filters=filters, live=ckpt_live,
        timeouts=timeouts)
    if not ckpt.ok:
        return MigrationResult(ckpt, OpResult("restart", "skipped",
                                              manager.cluster.engine.now,
                                              manager.cluster.engine.now),
                               live=live, rounds=rounds_log, bailout=bailout,
                               t_invoke=t_invoke)
    restart_targets = [(dst, pod, "mem") for _src, pod, dst in moves]
    restart = yield from manager.restart_task(
        restart_targets, time_virtualization=time_virtualization,
        deadline=deadline, recovery_mode=recovery_mode, timeouts=timeouts)
    return MigrationResult(ckpt, restart, live=live, rounds=rounds_log,
                           bailout=bailout, t_invoke=t_invoke)


def migrate(manager: Manager, moves: List[Move], **kw) -> Task:
    """Spawn a migration; the Task resolves to a MigrationResult."""
    return manager.cluster.engine.spawn(migrate_task(manager, moves, **kw),
                                        name="manager-migrate")
