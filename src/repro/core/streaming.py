"""Direct migration: checkpoint streamed node-to-node, then restart.

"ZapC can also directly stream checkpoint data from one set of nodes to
another, enabling direct migration of a distributed application to a
new set of nodes without saving and restoring state from secondary
storage."  A migration is a checkpoint whose URIs point at the
destination Agents (``agent://<node>``), followed by a restart from the
destinations' in-memory stores.  Because pods are the unit of migration,
N source nodes may map onto M destination nodes with N ≠ M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.tasks import Task
from .manager import Manager, OpResult

#: (source node, pod, destination node)
Move = Tuple[str, str, str]


@dataclass
class MigrationResult:
    """Both halves of a migration, for reporting."""

    checkpoint: OpResult
    restart: OpResult

    @property
    def ok(self) -> bool:
        return self.checkpoint.ok and self.restart.ok

    @property
    def duration(self) -> float:
        """Invocation to every pod running at its destination."""
        return self.restart.t_end - self.checkpoint.t_start


def migrate_task(manager: Manager, moves: List[Move], redirect: bool = False,
                 time_virtualization: bool = True, deadline: float = 120.0,
                 recovery_mode: str = "two-thread", filters=None):
    """Generator orchestrating a live migration (run as a host task).

    ``redirect`` turns on the send-queue redirect optimization: instead
    of re-transmitting each socket's send queue over the re-established
    connection after restart, the data is merged into the peer's
    checkpoint stream and appended to the peer's alternate receive queue
    — "merging both into a single transfer".

    ``filters`` requests an image-pipeline chain for the checkpoint half;
    a compress stage directly shortens the node-to-node stream.  A delta
    stage degrades to self-contained output here: the destination Agent
    holds no base to patch, so the source emits full records (the
    pipeline's ``chain_local`` rule).
    """
    ckpt_targets = [(src, pod, f"agent://{dst}") for src, pod, dst in moves]
    redirect_moves = {pod: dst for _src, pod, dst in moves} if redirect else None
    ckpt = yield from manager.checkpoint_task(
        ckpt_targets, context="migrate", deadline=deadline,
        redirect_moves=redirect_moves, filters=filters)
    if not ckpt.ok:
        return MigrationResult(ckpt, OpResult("restart", "skipped",
                                              manager.cluster.engine.now,
                                              manager.cluster.engine.now))
    restart_targets = [(dst, pod, "mem") for _src, pod, dst in moves]
    restart = yield from manager.restart_task(
        restart_targets, time_virtualization=time_virtualization,
        deadline=deadline, recovery_mode=recovery_mode)
    return MigrationResult(ckpt, restart)


def migrate(manager: Manager, moves: List[Move], **kw) -> Task:
    """Spawn a migration; the Task resolves to a MigrationResult."""
    return manager.cluster.engine.spawn(migrate_task(manager, moves, **kw),
                                        name="manager-migrate")
