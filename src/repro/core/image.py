"""Checkpoint image assembly.

One :class:`PodImage` per pod per checkpoint, carrying the standalone
state, the network-state records, and the fd links between them, all in
the portable intermediate format of :mod:`repro.core.codec`.

Size accounting distinguishes the *encoded* bytes (registers, queues,
metadata — what this process actually serialized) from the *accounted*
resident-set bytes (application memory the simulation tracks by count);
their sum is the image size the paper's Figure 6(c) plots, and the
network-state share is tracked separately (the "few kilobytes" claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..errors import CheckpointError
from . import codec
from .netckpt import netstate_nbytes
from .standalone import accounted_memory_bytes

#: image format version stamp.
FORMAT_VERSION = 1


@dataclass
class PodImage:
    """One pod's checkpoint: payload bytes plus size breakdown."""

    pod_id: str
    data: bytes
    encoded_bytes: int
    accounted_bytes: int
    netstate_bytes: int

    @property
    def total_bytes(self) -> int:
        """Full image size: what a write to storage would cost."""
        return self.encoded_bytes + self.accounted_bytes

    def unpack(self) -> Dict[str, Any]:
        """Decode the payload back into its sections."""
        payload = codec.decode(self.data)
        if payload.get("format") != FORMAT_VERSION:
            raise CheckpointError(f"unsupported image format {payload.get('format')!r}")
        return payload


def pack_pod_image(
    standalone: Dict[str, Any],
    socket_records: List[Dict[str, Any]],
    socket_fd_rows: List[Dict[str, Any]],
    devices: Dict[str, Any] = None,
) -> PodImage:
    """Assemble and encode a pod checkpoint image.

    ``devices`` optionally carries kernel-bypass device state (the GM
    extension): ``{"states": [...], "fd_rows": [...]}``.
    """
    # codec requires plain containers: datagram endpoint tuples are fine,
    # but socket records may carry Endpoint NamedTuples — normalize.
    devices = devices or {"states": [], "fd_rows": []}
    payload = {
        "format": FORMAT_VERSION,
        "standalone": standalone,
        "sockets": _plain(socket_records),
        "socket_fds": socket_fd_rows,
        "devices": _plain(devices),
    }
    data = codec.encode(payload)
    from .devckpt import device_state_nbytes

    return PodImage(
        pod_id=standalone["pod_id"],
        data=data,
        encoded_bytes=len(data),
        accounted_bytes=accounted_memory_bytes(standalone),
        netstate_bytes=netstate_nbytes(socket_records)
        + device_state_nbytes(devices["states"]),
    )


def _plain(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return tuple(_plain(x) for x in obj)
    if isinstance(obj, list):
        return [_plain(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _plain(v) for k, v in obj.items()}
    return obj
