"""Checkpoint image assembly.

One :class:`PodImage` per pod per checkpoint, carrying the standalone
state, the network-state records, and the fd links between them, all in
the portable intermediate format of :mod:`repro.core.codec`.

Size accounting distinguishes the *encoded* bytes (registers, queues,
metadata — what this process actually serialized) from the *accounted*
resident-set bytes (application memory the simulation tracks by count);
their sum is the image size the paper's Figure 6(c) plots, and the
network-state share is tracked separately (the "few kilobytes" claim).

Images come in two shapes:

* **v1** (:data:`FORMAT_VERSION`) — the raw codec payload, written when
  no pipeline filters are configured; byte-identical to the historic
  monolithic write path.
* **v2** (:data:`PIPELINE_FORMAT_VERSION`) — a self-describing envelope
  produced by :mod:`repro.core.pipeline` wrapping the filtered payload
  plus the filter chain needed to reverse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError
from . import codec
from .netckpt import netstate_nbytes
from .standalone import accounted_memory_bytes

#: unfiltered (raw payload) image format version stamp.
FORMAT_VERSION = 1
#: filtered (pipeline envelope) image format version stamp.
PIPELINE_FORMAT_VERSION = 2


@dataclass
class PodImage:
    """One pod's checkpoint: payload bytes plus size breakdown.

    ``encoded_bytes``/``accounted_bytes`` are *post-filter* sizes (what a
    write to storage costs); for an unfiltered image they equal the raw
    sizes.  ``filters`` is the applied chain (empty for v1 images),
    ``epoch`` the position in a delta chain, and ``stage_costs`` the
    per-stage cost breakdown recorded at pack time.
    """

    pod_id: str
    data: bytes
    encoded_bytes: int
    accounted_bytes: int
    netstate_bytes: int
    filters: List[Dict[str, Any]] = field(default_factory=list)
    epoch: int = 0
    raw_encoded_bytes: Optional[int] = None
    raw_accounted_bytes: Optional[int] = None
    stage_costs: List[Dict[str, Any]] = field(default_factory=list)
    #: accounted bytes the pod dirtied since its last committed
    #: checkpoint (from the Agent's measured dirty tables), when dirty
    #: tracking was on at capture time — the content-addressed store's
    #: dedup model reads this to tell changed blocks from clean ones.
    acct_dirty_bytes: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Full image size: what a write to storage would cost."""
        return self.encoded_bytes + self.accounted_bytes

    @property
    def raw_total_bytes(self) -> int:
        """Pre-filter image size — what restore rebuilds in memory."""
        encoded = self.raw_encoded_bytes if self.raw_encoded_bytes is not None \
            else self.encoded_bytes
        accounted = self.raw_accounted_bytes if self.raw_accounted_bytes is not None \
            else self.accounted_bytes
        return encoded + accounted

    def unpack(self) -> Dict[str, Any]:
        """Decode the payload back into its sections.

        Works directly on v1 (unfiltered) images and on self-contained
        v2 images; a delta image that depends on an earlier epoch must go
        through :meth:`repro.core.pipeline.ImagePipeline.reassemble` with
        the rest of its chain.
        """
        payload = codec.decode(self.data)
        version = payload.get("format") if isinstance(payload, dict) else None
        if version == FORMAT_VERSION:
            return payload
        if version == PIPELINE_FORMAT_VERSION:
            from .pipeline import ImagePipeline, image_extends_chain

            if image_extends_chain(self):
                raise CheckpointError(
                    f"pod {self.pod_id!r} epoch {self.epoch} is a delta image; "
                    "reassemble its chain via ImagePipeline.reassemble")
            return ImagePipeline.reassemble([self]).payload
        raise CheckpointError(f"unsupported image format {version!r}")


def build_payload(
    standalone: Dict[str, Any],
    socket_records: List[Dict[str, Any]],
    socket_fd_rows: List[Dict[str, Any]],
    devices: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The codec-ready payload of one pod checkpoint.

    ``devices`` optionally carries kernel-bypass device state (the GM
    extension): ``{"states": [...], "fd_rows": [...]}``.
    """
    # codec requires plain containers: datagram endpoint tuples are fine,
    # but socket records may carry Endpoint NamedTuples — normalize.
    devices = devices or {"states": [], "fd_rows": []}
    return {
        "format": FORMAT_VERSION,
        "standalone": standalone,
        "sockets": _plain(socket_records),
        "socket_fds": socket_fd_rows,
        "devices": _plain(devices),
    }


def pack_pod_image(
    standalone: Dict[str, Any],
    socket_records: List[Dict[str, Any]],
    socket_fd_rows: List[Dict[str, Any]],
    devices: Dict[str, Any] = None,
) -> PodImage:
    """Assemble and encode an *unfiltered* (v1) pod checkpoint image."""
    devices = devices or {"states": [], "fd_rows": []}
    payload = build_payload(standalone, socket_records, socket_fd_rows, devices)
    data = codec.encode(payload)
    from .devckpt import device_state_nbytes

    return PodImage(
        pod_id=standalone["pod_id"],
        data=data,
        encoded_bytes=len(data),
        accounted_bytes=accounted_memory_bytes(standalone),
        netstate_bytes=netstate_nbytes(socket_records)
        + device_state_nbytes(devices["states"]),
    )


def _plain(obj: Any) -> Any:
    if isinstance(obj, tuple):
        return tuple(_plain(x) for x in obj)
    if isinstance(obj, list):
        return [_plain(x) for x in obj]
    if isinstance(obj, dict):
        return {k: _plain(v) for k, v in obj.items()}
    return obj
