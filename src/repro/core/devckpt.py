"""Checkpoint-restart of kernel-bypass devices (the §5 GM extension).

The paper's two requirements, realized:

1. *"The library must be decoupled from the device driver instance"* —
   pod processes reach the GM device only through interposed syscalls
   and fd handles, never a raw device pointer, so a restored process's
   handle can be re-bound to a different node's device.
2. *"There must be some method to extract the state kept by the device
   driver, as well as reinstate this state on another such device
   driver"* — :meth:`~repro.net.gm.GmDevice.extract_state` /
   :meth:`~repro.net.gm.GmDevice.reinstate_state`, driven from here.

Device state (ports, credits/tokens, receive queues, uncredited sends)
rides in the pod image next to the socket records; restore happens in
the same phase as the network-state restore, before activation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..net.gm import GmDevice, GmPort
from ..pod.pod import Pod


def capture_pod_devices(pod: Pod) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Extract bypass-device state for a pod.

    Returns ``(port_states, fd_rows)`` where fd rows link process fds to
    port numbers, mirroring the socket fd table.
    """
    device: GmDevice = getattr(pod.kernel, "gm_device", None)
    if device is None:
        return [], []
    states = device.extract_state(pod.vip)
    fd_rows = []
    for proc in pod.processes():
        for fd in sorted(proc.fds):
            obj = proc.fds[fd]
            if isinstance(obj, GmPort):
                fd_rows.append({"vpid": proc.vpid, "fd": fd,
                                "port_num": obj.port_num})
    return states, fd_rows


def device_state_nbytes(states: List[Dict[str, Any]]) -> int:
    """Bytes of captured device state (for the network-state accounting)."""
    total = 0
    for state in states:
        total += sum(len(d) for d, _s, _p in state["recv_q"])
        total += sum(len(data) for _dst, _dp, data in state["pending"].values())
        total += 64
    return total


def restore_pod_devices(pod: Pod, states: List[Dict[str, Any]],
                        fd_rows: List[Dict[str, Any]]) -> None:
    """Reinstate device state on the (possibly different) node's device
    and transplant the port handles into the restored fd tables."""
    if not states and not fd_rows:
        return
    device: GmDevice = getattr(pod.kernel, "gm_device", None)
    if device is None:
        # the destination node lacks the bypass hardware: the paper's
        # extension explicitly requires "another such device driver"
        from ..errors import RestartError
        raise RestartError(f"node {pod.kernel.hostname} has no GM device")
    by_num = device.reinstate_state(states)
    by_vpid = {proc.vpid: proc for proc in pod.processes()}
    for row in fd_rows:
        proc = by_vpid.get(int(row["vpid"]))
        port = by_num.get(int(row["port_num"]))
        if proc is None or port is None:
            from ..errors import RestartError
            raise RestartError(f"dangling GM fd row {row}")
        proc.fds[int(row["fd"])] = port
