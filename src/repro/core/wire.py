"""Length-prefixed message framing for Manager↔Agent control channels.

Messages are codec-encoded objects behind a 4-byte big-endian length.
The helpers are generators usable from host tasks via ``yield from``.
The Manager "maintains reliable network connections with the Agents
throughout the entire operation", so failure detection is simply
noticing EOF/reset on these channels — both helpers return/accept
``None`` for a broken connection rather than raising.
"""

from __future__ import annotations

import struct
from typing import Any, Optional

from ..vos.kernel import Kernel
from ..vos.syscalls import Errno, HostChannel
from . import codec


def send_msg(kernel: Kernel, chan: HostChannel, fd: int, obj: Any):
    """Send one framed message; yields True on success, False on error."""
    data = codec.encode(obj)
    frame = struct.pack(">I", len(data)) + data
    result = yield kernel.host_call(chan, "send", fd, frame, 0)
    return not isinstance(result, Errno)


def recv_msg(kernel: Kernel, chan: HostChannel, fd: int) -> Any:
    """Receive one framed message; yields the object, or None on EOF/error."""
    header = yield from _recv_exact(kernel, chan, fd, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    body = yield from _recv_exact(kernel, chan, fd, length)
    if body is None:
        return None
    return codec.decode(body)


def _recv_exact(kernel: Kernel, chan: HostChannel, fd: int, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        chunk = yield kernel.host_call(chan, "recv", fd, n - len(buf), 0)
        if isinstance(chunk, Errno) or chunk == b"":
            return None
        buf += chunk
    return buf
