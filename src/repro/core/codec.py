"""The intermediate checkpoint format.

ZapC "employs higher-level semantic information specified in an
intermediate format rather than kernel specific data in native format to
keep the format portable across different kernels".  This codec is that
format: a self-describing tag-length-value binary encoding of the
semantic types checkpoint images are built from (scalars, strings,
byte strings, sequences, string-keyed maps, and numpy arrays), with no
Python pickling — an image written by one simulated kernel can be
decoded by any other.

Wire grammar (big-endian):

===========  ===========================================
tag ``N``    None
tag ``T/F``  booleans
tag ``i``    int64
tag ``I``    arbitrary-precision int: u32 length + bytes
tag ``f``    float64
tag ``s``    str: u32 length + utf-8 bytes
tag ``b``    bytes: u32 length + raw bytes
tag ``l``    list: u32 count + items
tag ``t``    tuple: u32 count + items
tag ``d``    dict, str keys: u32 count + (str key, value) pairs
tag ``D``    dict, any keys: u32 count + (key, value) pairs
tag ``a``    ndarray: dtype str, shape tuple, raw bytes
tag ``E``    Errno: name str + detail str (syscall error held in a register)
===========  ===========================================
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

from ..errors import CodecError
from ..vos.syscalls import Errno

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` to the intermediate format."""
    out = bytearray()
    _enc(obj, out)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Deserialize a buffer produced by :func:`encode`."""
    obj, pos = _dec(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after decode")
    return obj


def _enc(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        if _I64_MIN <= obj <= _I64_MAX:
            out += b"i"
            out += struct.pack(">q", obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 15) // 8, "big", signed=True)
            out += b"I"
            out += struct.pack(">I", len(raw))
            out += raw
    elif isinstance(obj, float):
        out += b"f"
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"s"
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out += b"b"
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(obj, list):
        out += b"l"
        out += struct.pack(">I", len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, tuple):
        out += b"t"
        out += struct.pack(">I", len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, dict):
        all_str = all(isinstance(k, str) for k in obj)
        out += b"d" if all_str else b"D"
        out += struct.pack(">I", len(obj))
        for key, value in obj.items():
            _enc(key, out)
            _enc(value, out)
    elif isinstance(obj, np.ndarray):
        out += b"a"
        _enc(str(obj.dtype), out)
        _enc(tuple(int(x) for x in obj.shape), out)
        _enc(np.ascontiguousarray(obj).tobytes(), out)
    elif isinstance(obj, Errno):
        # a process may hold a syscall error in a register across a
        # checkpoint (e.g. the result of a refused connect)
        out += b"E"
        _enc(obj.name, out)
        _enc(obj.detail, out)
    elif isinstance(obj, (np.integer,)):
        _enc(int(obj), out)
    elif isinstance(obj, (np.floating,)):
        _enc(float(obj), out)
    else:
        raise CodecError(f"type {type(obj).__name__} is not representable in the image format")


def _need(data: bytes, pos: int, n: int) -> None:
    if pos + n > len(data):
        raise CodecError("truncated image")


def _dec(data: bytes, pos: int) -> Tuple[Any, int]:
    _need(data, pos, 1)
    tag = data[pos:pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"i":
        _need(data, pos, 8)
        return struct.unpack(">q", data[pos:pos + 8])[0], pos + 8
    if tag == b"I":
        _need(data, pos, 4)
        n = struct.unpack(">I", data[pos:pos + 4])[0]
        pos += 4
        _need(data, pos, n)
        return int.from_bytes(data[pos:pos + n], "big", signed=True), pos + n
    if tag == b"f":
        _need(data, pos, 8)
        return struct.unpack(">d", data[pos:pos + 8])[0], pos + 8
    if tag in (b"s", b"b"):
        _need(data, pos, 4)
        n = struct.unpack(">I", data[pos:pos + 4])[0]
        pos += 4
        _need(data, pos, n)
        raw = data[pos:pos + n]
        return (raw.decode("utf-8") if tag == b"s" else raw), pos + n
    if tag in (b"l", b"t"):
        _need(data, pos, 4)
        n = struct.unpack(">I", data[pos:pos + 4])[0]
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _dec(data, pos)
            items.append(item)
        return (items if tag == b"l" else tuple(items)), pos
    if tag in (b"d", b"D"):
        _need(data, pos, 4)
        n = struct.unpack(">I", data[pos:pos + 4])[0]
        pos += 4
        out = {}
        for _ in range(n):
            key, pos = _dec(data, pos)
            if tag == b"d" and not isinstance(key, str):
                raise CodecError("non-string key in a string-keyed map")
            value, pos = _dec(data, pos)
            out[key] = value
        return out, pos
    if tag == b"a":
        dtype, pos = _dec(data, pos)
        shape, pos = _dec(data, pos)
        raw, pos = _dec(data, pos)
        arr = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()
        return arr, pos
    if tag == b"E":
        name, pos = _dec(data, pos)
        detail, pos = _dec(data, pos)
        return Errno(str(name), str(detail)), pos
    raise CodecError(f"unknown tag {tag!r} at offset {pos - 1}")


class _CountingWriter:
    """A write target that accumulates only lengths.

    Duck-types the single operation :func:`_enc` performs on its output
    (``out += bytes_like``), so sizes are computed without materializing
    the encoded buffer — at MB-scale accounted memory that buffer is a
    real allocation on every Figure 6(c) sample.
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def __iadd__(self, data) -> "_CountingWriter":
        self.n += len(data)
        return self


def encoded_size(obj: Any) -> int:
    """Byte size of ``obj`` in the intermediate format (no buffer built)."""
    out = _CountingWriter()
    _enc(obj, out)
    return out.n
