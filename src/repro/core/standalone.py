"""Standalone (per-pod, non-network) checkpoint-restart — the Zap layer.

Captures everything about a pod except live socket state: process images
(program identity, program counter, registers, call stack, accounted
memory, pending blocked syscall), virtual pids, open files, timers and
the virtual clock.  Restore rebuilds the processes on the target node,
re-links their descriptors, re-arms timers, rebases the clock, and
finally *activates* the pod — re-issuing checkpointed blocking syscalls
(the ``ERESTARTSYS`` analogue) and enqueueing runnable processes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import RestartError
from ..pod.pod import Pod
from ..vos.filesystem import OpenFile
from ..vos.kernel import Kernel
from ..vos.process import BLOCKED, Process, RUNNABLE
from . import timevirt


def capture_pod_standalone(pod: Pod) -> Dict[str, Any]:
    """Capture the pod's non-network state (the pod must be suspended)."""
    kernel = pod.kernel
    procs = pod.processes()
    sample = procs[0] if procs else None
    vtime = kernel.vnow(sample) if sample is not None else kernel.engine.now
    proc_images = []
    file_rows = []
    for proc in procs:
        image = proc.to_image()
        image["vpid"] = proc.vpid
        proc_images.append(image)
        for fd in sorted(proc.fds):
            obj = proc.fds[fd]
            if isinstance(obj, OpenFile):
                file_rows.append({
                    "vpid": proc.vpid,
                    "fd": fd,
                    "fs": obj.fs.name,
                    "path": obj.path,
                    "pos": obj.pos,
                    "mode": obj.mode,
                })
    return {
        "pod_id": pod.id,
        "vip": pod.vip,
        "vtime": vtime,
        "time_virtualization": pod.time_virtualization,
        "procs": proc_images,
        "files": file_rows,
        "timers": timevirt.capture_timers(pod),
        # exited-but-unreaped children: their statuses must survive so a
        # restored parent's waitpid still collects them
        "zombies": {str(vpid): code for vpid, code in pod.zombies.items()},
    }


def accounted_memory_bytes(standalone: Dict[str, Any]) -> int:
    """Total resident-set bytes across the pod's process images — the
    dominant term of checkpoint image size."""
    return sum(sum(p["memory"].values()) for p in standalone["procs"])


def proc_memory_tables(standalone: Dict[str, Any]) -> Dict[int, Dict[str, int]]:
    """Per-process memory segment tables, ``{vpid: {segment: bytes}}``.

    The image pipeline's delta filter uses these as its dirty-state
    model: a process whose table is unchanged since the previous epoch
    contributes only its assumed-dirty fraction to the incremental image.
    """
    return {int(p["vpid"]): dict(p["memory"]) for p in standalone["procs"]}


def capture_proc_dirty(pod: Pod, consumer: str) -> Dict[int, Dict[str, int]]:
    """Per-process *measured* dirty tables against ``consumer``'s baseline,
    ``{vpid: {segment: dirty bytes}}`` — captured at suspend, alongside
    the segment tables, and handed to the delta filter so epoch-N images
    are charged what the application actually wrote."""
    return {proc.vpid: proc.memory.dirty_table(consumer)
            for proc in pod.processes()}


def _find_fs(kernel: Kernel, name: str):
    if kernel.vfs.root.name == name:
        return kernel.vfs.root
    for fs in kernel.vfs.mounts.values():
        if fs.name == name:
            return fs
    raise RestartError(f"file system {name!r} not mounted on {kernel.hostname}")


def restore_pod_standalone(
    pod: Pod,
    standalone: Dict[str, Any],
    socket_map: Optional[Dict[int, Any]] = None,
    socket_fd_rows: Optional[List[Dict[str, Any]]] = None,
    time_virtualization: Optional[bool] = None,
) -> List[Process]:
    """Rebuild the pod's processes on ``pod``'s (new) node.

    ``socket_map`` maps original sock_ids to the re-established sockets
    from the network-connectivity recovery; ``socket_fd_rows`` are the
    fd links captured alongside.  Does **not** activate the processes —
    call :func:`activate_pod` after the network state is restored, per
    the restart algorithm's step ordering.
    """
    kernel = pod.kernel
    enabled = standalone["time_virtualization"] if time_virtualization is None else time_virtualization
    timevirt.apply_clock(pod, float(standalone["vtime"]), enabled)

    restored: List[Process] = []
    by_vpid: Dict[int, Process] = {}
    for image in standalone["procs"]:
        proc = Process.from_image(kernel.alloc_pid(), image)
        proc.pod_id = pod.id
        kernel.adopt_process(proc, enqueue=False)
        pod.adopt(proc, vpid=int(image["vpid"]))
        restored.append(proc)
        by_vpid[proc.vpid] = proc

    # re-link open files (contents live on shared storage)
    for row in standalone["files"]:
        proc = by_vpid.get(int(row["vpid"]))
        if proc is None:
            raise RestartError(f"file row references unknown vpid {row['vpid']}")
        fs = _find_fs(kernel, row["fs"])
        f = fs.files.get(row["path"])
        if f is None:
            raise RestartError(f"missing file {row['path']} on {row['fs']}")
        handle = OpenFile(fs, row["path"], f, row["mode"])
        handle.pos = int(row["pos"])
        proc.fds[int(row["fd"])] = handle

    # transplant re-established sockets into fd tables
    if socket_fd_rows:
        if socket_map is None:
            raise RestartError("socket fd rows without a socket map")
        for row in socket_fd_rows:
            proc = by_vpid.get(int(row["vpid"]))
            sock = socket_map.get(int(row["sock_id"]))
            if proc is None or sock is None:
                raise RestartError(f"dangling socket fd row {row}")
            proc.fds[int(row["fd"])] = sock

    for vpid, code in standalone.get("zombies", {}).items():
        pod.note_zombie(int(vpid), int(code))
    timevirt.restore_timers(pod, standalone["timers"], enabled)
    return restored


def activate_pod(pod: Pod) -> None:
    """Let restored processes run: the final step of the local restart.

    Blocked processes re-issue their checkpointed syscall (idempotent
    handlers, re-translated through the new namespace); runnable ones go
    straight onto the run queue.
    """
    kernel = pod.kernel
    for proc in pod.processes():
        # A syscall that completed while the process was already stopped
        # parked its result instead of writing the register (the kernel's
        # SIGSTOP protocol).  On the source node SIGCONT delivers it; a
        # restored process never gets that SIGCONT, so deliver it here —
        # otherwise the process resumes past the syscall with a stale
        # register and the completed result (e.g. received bytes) is lost.
        if proc.pending_result is not None:
            dst, value = proc.pending_result
            proc.pending_result = None
            if dst is not None:
                proc.regs[dst] = value
        if proc.state == BLOCKED and proc.blocked_on is not None:
            kernel.do_syscall(proc, proc.blocked_on, restarted=True)
        elif proc.state == RUNNABLE:
            kernel.scheduler.enqueue(proc)
