"""Cluster substrate: blades, construction, fault injection."""

from .builder import Cluster
from .faults import (
    ALL_PHASES,
    ASYNC_CKPT_PHASES,
    CHECKPOINT_PHASES,
    FAULT_KINDS,
    FLEET_PHASES,
    PRECOPY_PHASES,
    RESTART_PHASES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    crash_node,
    heal_node,
    isolate_node,
)
from .node import Node, NodeSpec

__all__ = [
    "ALL_PHASES",
    "ASYNC_CKPT_PHASES",
    "CHECKPOINT_PHASES",
    "FAULT_KINDS",
    "FLEET_PHASES",
    "PRECOPY_PHASES",
    "RESTART_PHASES",
    "Cluster",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "Node",
    "NodeSpec",
    "crash_node",
    "heal_node",
    "isolate_node",
]
