"""Cluster substrate: blades, construction, fault injection."""

from .builder import Cluster
from .faults import crash_node, heal_node, isolate_node
from .node import Node, NodeSpec

__all__ = ["Cluster", "Node", "NodeSpec", "crash_node", "heal_node", "isolate_node"]
