"""Failure injection.

The motivating use cases of the paper — "fault resilience by migrating
applications off of faulty cluster nodes, fault recovery by restarting
from the last checkpoint" — need faults to recover from.  This module
provides node crashes (fail-stop: processes die, NIC goes dark) and
Manager/Agent link failures (which must abort a checkpoint gracefully,
per Section 4).
"""

from __future__ import annotations

from ..errors import NoSuchProcessError
from ..vos.signals import SIGKILL
from .builder import Cluster
from .node import Node


def crash_node(cluster: Cluster, node: Node) -> None:
    """Fail-stop crash: every process dies and the NIC stops answering.

    Pods hosted on the node are lost (that is the point — recovery comes
    from restarting their last checkpoint elsewhere).
    """
    node.crashed = True
    for pid in list(node.kernel.procs):
        try:
            node.kernel.send_signal(pid, SIGKILL)
        except NoSuchProcessError:
            pass
    for pod in list(node.kernel.pods.values()):
        pod.destroy()
    node.stack.nic.ingress = None  # the NIC goes dark


def isolate_node(cluster: Cluster, node: Node) -> None:
    """Network-partition ``node`` from every other blade (node stays up)."""
    for other in cluster.nodes:
        if other is not node:
            cluster.fabric.partition(node.ip, other.ip)


def heal_node(cluster: Cluster, node: Node) -> None:
    """Undo :func:`isolate_node`."""
    for other in cluster.nodes:
        if other is not node:
            cluster.fabric.heal(node.ip, other.ip)
