"""Deterministic fault injection.

The motivating use cases of the paper — "fault resilience by migrating
applications off of faulty cluster nodes, fault recovery by restarting
from the last checkpoint" — need faults to recover from.  This module
provides two layers:

* primitive faults (:func:`crash_node`, :func:`isolate_node`,
  :func:`heal_node`) that tests drive by hand, and
* a scriptable, *seeded* injection subsystem: a :class:`FaultPlan` is a
  list of :class:`FaultSpec` entries, each naming a protocol phase
  boundary (the Manager/Agent trace points), a target, and a fault kind;
  a :class:`FaultInjector` installed on the cluster fires them as the
  protocol crosses those boundaries and records an event trace.  The
  same seed always produces the same plan, and the same plan always
  produces the same trace — which is what makes chaos failures
  reproducible (re-run the seed, replay the schedule).

Fault kinds:

``crash_node``
    Fail-stop crash of a blade at the phase boundary (scheduled as its
    own engine event so it is safe to trigger from a task on the dying
    node itself).
``link_drop``
    Partition the target node (from everything, or from ``peer``) for
    ``seconds``; healing is scheduled automatically.
``link_delay``
    Add ``seconds`` of one-way latency on the target node's links (or on
    every link when no node is named) for ``duration`` seconds.
``san_stall``
    Queue ``seconds`` of write stall on the SAN; the next flush pays it.
``truncate_image``
    Direct the Agent flushing at this boundary to cut its container
    write short at ``fraction`` of the bytes — a partial image.
``hang``
    Suspend the task crossing the boundary for ``seconds`` — an Agent
    stuck in a pipeline stage, which the Manager's per-phase timeouts
    must survive.
``crash_manager``
    Fail-stop crash of the *Manager* at the phase boundary (scheduled
    as its own engine event, like ``crash_node``).  Not part of
    :data:`FAULT_KINDS` — the random-draw domain is frozen so existing
    seeded plans replay identically — it is used by explicit failover
    plans (see :func:`repro.cluster.chaos.run_failover_chaos`), which
    fire it at the :data:`MANAGER_PHASES` ledger crossings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import NoSuchProcessError
from ..vos.signals import SIGKILL
from .builder import Cluster
from .node import Node


# ---------------------------------------------------------------------------
# primitive faults
# ---------------------------------------------------------------------------


def crash_node(cluster: Cluster, node: Node) -> None:
    """Fail-stop crash: every process dies and the node goes dark.

    Pods hosted on the node are lost (that is the point — recovery comes
    from restarting their last checkpoint elsewhere).  Fail-stop means
    *nothing* on the node keeps running: the NIC stops answering, the
    blade is partitioned from every peer, and the node's Agent daemon
    and session tasks are cancelled.
    """
    node.crashed = True
    for other in cluster.nodes:
        if other is not node:
            cluster.fabric.partition(node.ip, other.ip)
    for pid in list(node.kernel.procs):
        try:
            node.kernel.send_signal(pid, SIGKILL)
        except NoSuchProcessError:
            pass
    for pod in list(node.kernel.pods.values()):
        pod.destroy()
    node.stack.nic.ingress = None  # the NIC goes dark
    # host tasks running *on* the node (the Agent daemon and its
    # sessions are named "...@<node>") die with it
    suffix = f"@{node.name}"
    for task in cluster.engine.live_tasks():
        if task.name.endswith(suffix):
            task.cancel()


def isolate_node(cluster: Cluster, node: Node) -> None:
    """Network-partition ``node`` from every other blade (node stays up)."""
    for other in cluster.nodes:
        if other is not node:
            cluster.fabric.partition(node.ip, other.ip)


def heal_node(cluster: Cluster, node: Node) -> None:
    """Undo :func:`isolate_node`."""
    for other in cluster.nodes:
        if other is not node:
            cluster.fabric.heal(node.ip, other.ip)


# ---------------------------------------------------------------------------
# scriptable injection
# ---------------------------------------------------------------------------

#: fault kinds the injector understands.
FAULT_KINDS = ("crash_node", "link_drop", "link_delay", "san_stall",
               "truncate_image", "hang")

#: protocol phase boundaries (trace points) that carry a node and can
#: host a fault.  The Manager and Agent announce these through
#: :meth:`repro.cluster.builder.Cluster.trace`.
CHECKPOINT_PHASES = (
    "manager.connect",
    "manager.meta_recv",
    "manager.continue_sent",
    "manager.done_recv",
    "agent.suspend",
    "agent.netstate",
    "agent.meta_sent",
    "agent.standalone",
    "agent.continue_recv",
    "agent.flush",
)
RESTART_PHASES = (
    "manager.load_meta",
    "manager.restart_sent",
    "agent.load_meta",
    "agent.connectivity",
)
#: live-migration pre-copy boundaries (kept separate from
#: CHECKPOINT_PHASES so existing seeded plans draw identically).
PRECOPY_PHASES = (
    "manager.precopy_round",
    "agent.precopy",
)
#: the Manager's durable phase boundaries: each is crossed immediately
#: after the matching op-ledger record became durable, so a Manager
#: crash here is exactly "the record survived, the action after it did
#: not" — the crash points a takeover replica must recover from.
#: (Kept separate from CHECKPOINT_PHASES for the same replay reason.)
MANAGER_PHASES = (
    "manager.ledger.begin",
    "manager.ledger.meta",
    "manager.ledger.continue",
    "manager.ledger.done",
    "manager.ledger.flush",
    "manager.ledger.abort",
    "manager.ledger.commit",
)
#: fleet campaign boundaries (wave loop and per-unit launch/finish, plus
#: the replica's campaign-resume crossing).  Kept separate from every
#: other tuple so existing seeded plans draw identically.
FLEET_PHASES = (
    "fleet.wave_start",
    "fleet.pod_start",
    "fleet.pod_done",
    "fleet.wave_done",
    "fleet.resume",
)
#: zero-stall (asynchronous) checkpoint boundaries: end of the capture
#: window, start of the post-resume encode, start of the overlapped
#: write-out.  Kept separate from every other tuple so existing seeded
#: plans draw identically.
ASYNC_CKPT_PHASES = (
    "agent.async_capture",
    "agent.async_encode",
    "agent.async_stream",
)
#: content-addressed store boundaries: start of the chunk upload, the
#: commit point between upload and recipe publish, and the op-keyed GC
#: rollback.  Kept separate from every other tuple so existing seeded
#: plans draw identically.
CAS_PHASES = (
    "cas.write",
    "cas.commit",
    "cas.gc",
)
ALL_PHASES = (CHECKPOINT_PHASES + RESTART_PHASES + PRECOPY_PHASES
              + MANAGER_PHASES + FLEET_PHASES + ASYNC_CKPT_PHASES
              + CAS_PHASES)


@dataclass
class FaultSpec:
    """One scheduled fault: *kind* fires at *phase* on a matching target.

    ``after`` skips that many matching occurrences first (fire on the
    ``after+1``-th crossing); ``once`` retires the spec after it fires.
    ``node``/``pod`` of ``None`` match any.  ``seconds`` is the fault
    magnitude (stall/hang/delay length, drop duration), ``duration`` the
    time a link_delay stays installed, ``fraction`` the truncation point
    of a partial image write, ``peer`` the far end of a link fault.
    """

    kind: str
    phase: str
    node: Optional[str] = None
    pod: Optional[str] = None
    peer: Optional[str] = None
    after: int = 0
    seconds: float = 0.0
    duration: float = 0.0
    fraction: float = 0.5
    once: bool = True


@dataclass
class FaultPlan:
    """A reproducible fault schedule: specs plus the seed that made it."""

    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)

    @classmethod
    def random(cls, seed: int, node_names: List[str],
               n_faults: Optional[int] = None,
               phases: Tuple[str, ...] = CHECKPOINT_PHASES,
               kinds: Tuple[str, ...] = FAULT_KINDS) -> "FaultPlan":
        """Draw a seeded random schedule.  Same seed → same plan."""
        rng = random.Random(seed)
        count = n_faults if n_faults is not None else rng.randint(1, 4)
        faults: List[FaultSpec] = []
        for _ in range(count):
            kind = rng.choice(kinds)
            # a truncated write can only happen where writes happen: the
            # flush boundary, or the CAS chunk upload when the plan's
            # phase domain includes it (existing domains draw unchanged)
            if kind == "truncate_image":
                phase = "cas.write" if "cas.write" in phases else "agent.flush"
            else:
                phase = rng.choice(phases)
            spec = FaultSpec(
                kind=kind,
                phase=phase,
                node=rng.choice(node_names + [None]),
                after=rng.randint(0, 2),
                seconds=round(rng.uniform(0.2, 6.0), 3),
                duration=round(rng.uniform(0.5, 4.0), 3),
                fraction=round(rng.uniform(0.05, 0.95), 3),
            )
            faults.append(spec)
        return cls(seed=seed, faults=faults)

    def describe(self) -> List[Dict[str, Any]]:
        return [vars(replace(spec)) for spec in self.faults]


class _Armed:
    """Runtime state of one spec: occurrence counter + retired flag."""

    __slots__ = ("spec", "count", "spent")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.count = 0
        self.spent = False


class FaultInjector:
    """Fires a :class:`FaultPlan` at protocol phase boundaries.

    Install with :meth:`install`; the Manager and Agents announce phase
    crossings via ``yield from cluster.trace(phase, node=..., pod=...)``,
    which lands in :meth:`on_phase`.  Every crossing — whether or not a
    fault fires — is appended to :attr:`trace` as ``(time, phase, node,
    pod, fired_kinds)``, so two runs of the same seed can be compared
    event for event.
    """

    def __init__(self, cluster: Cluster, plan: Optional[FaultPlan] = None) -> None:
        self.cluster = cluster
        self.plan = plan if plan is not None else FaultPlan()
        self.enabled = True
        #: every phase crossing, in order.
        self.trace: List[Tuple[float, str, Optional[str], Optional[str],
                               Tuple[str, ...]]] = []
        #: every fault that actually fired: (time, kind, phase, node, pod).
        self.fired: List[Tuple[float, str, str, Optional[str], Optional[str]]] = []
        self._armed = [_Armed(spec) for spec in self.plan.faults]

    def install(self) -> "FaultInjector":
        """Attach to the cluster so trace points reach this injector."""
        self.cluster.injector = self
        return self

    # ------------------------------------------------------------------
    def on_phase(self, phase: str, node: Optional[str] = None,
                 pod: Optional[str] = None):
        """Generator the protocol yields through at each trace point.

        Applies matching faults; a hang is charged *to the calling task*
        by yielding a sleep, so the stall lands exactly where the plan
        says.  Returns a directives dict the caller may consult (the
        ``truncate`` directive for partial image writes).
        """
        engine = self.cluster.engine
        directives: Dict[str, Any] = {}
        fired: List[str] = []
        sleep_s = 0.0
        if self.enabled:
            for arm in self._armed:
                spec = arm.spec
                if arm.spent or spec.phase != phase:
                    continue
                if spec.node is not None and spec.node != node:
                    continue
                if spec.pod is not None and spec.pod != pod:
                    continue
                arm.count += 1
                if arm.count <= spec.after:
                    continue
                if spec.once:
                    arm.spent = True
                fired.append(spec.kind)
                self.fired.append((engine.now, spec.kind, phase, node, pod))
                sleep_s += self._apply(spec, node, directives)
        self.trace.append((round(engine.now, 9), phase, node, pod, tuple(fired)))
        # with an injector installed, Cluster.trace leaves the crossing
        # mark to us so each fired fault rides on its instant
        if self.cluster.tracer is not None:
            self.cluster.tracer.instant(phase, node=node, pod=pod)
            for kind in fired:
                self.cluster.tracer.instant(f"fault.{kind}", node=node,
                                            pod=pod, category="fault",
                                            at=phase)
        if fired:
            self.cluster.count("faults.activated", len(fired))
        if sleep_s > 0.0:
            yield engine.sleep(sleep_s)
        return directives

    # ------------------------------------------------------------------
    def _apply(self, spec: FaultSpec, event_node: Optional[str],
               directives: Dict[str, Any]) -> float:
        """Apply one fault; returns seconds to stall the calling task."""
        cluster = self.cluster
        engine = cluster.engine
        target_name = spec.node if spec.node is not None else event_node
        target = (cluster.node_by_name(target_name)
                  if target_name is not None else None)
        if spec.kind == "crash_node":
            if target is not None and not target.crashed:
                # scheduled as its own event: a task on the dying node may
                # be the one crossing this boundary, and a generator
                # cannot be closed while it is executing
                engine.schedule(0.0, crash_node, cluster, target)
        elif spec.kind == "crash_manager":
            mgr = getattr(cluster, "manager", None)
            if mgr is not None and not mgr.crashed:
                # same scheduling rule: the crossing task is usually one
                # of the Manager's own op tasks
                engine.schedule(0.0, mgr.crash)
        elif spec.kind == "link_drop":
            if target is not None:
                peers = ([cluster.node_by_name(spec.peer)]
                         if spec.peer else
                         [n for n in cluster.nodes if n is not target])
                for peer in peers:
                    cluster.fabric.partition(target.ip, peer.ip)
                    engine.schedule(max(spec.seconds, 1e-6),
                                    cluster.fabric.heal, target.ip, peer.ip)
        elif spec.kind == "link_delay":
            if target is None:
                cluster.fabric.global_extra_latency += spec.seconds
                if spec.duration > 0.0:
                    engine.schedule(spec.duration, self._clear_global_delay,
                                    spec.seconds)
            else:
                peers = ([cluster.node_by_name(spec.peer)]
                         if spec.peer else
                         [n for n in cluster.nodes if n is not target])
                for peer in peers:
                    cluster.fabric.delay_link(target.ip, peer.ip, spec.seconds)
                    if spec.duration > 0.0:
                        engine.schedule(spec.duration,
                                        cluster.fabric.clear_link_delay,
                                        target.ip, peer.ip)
        elif spec.kind == "san_stall":
            cluster.san.inject_stall(spec.seconds)
        elif spec.kind == "truncate_image":
            directives["truncate"] = spec.fraction
        elif spec.kind == "hang":
            return spec.seconds
        return 0.0

    def _clear_global_delay(self, extra: float) -> None:
        self.cluster.fabric.global_extra_latency = max(
            0.0, self.cluster.fabric.global_extra_latency - extra)
