"""Cluster node (blade) model and the simulation cost constants.

The defaults mirror the paper's testbed: IBM HS20 blades with dual
3.06 GHz Xeons and 2.5 GB RAM on Gigabit Ethernet with a Fibre-Channel
SAN.  The one free parameter with no hardware analogue is
``memcpy_bandwidth`` — the rate at which checkpoint code serializes
process images to memory — which calibrates Figure 6(a)'s absolute
scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..net.fabric import Fabric
from ..net.sockets import NetStack
from ..sim.engine import Engine
from ..storage.san import SAN_MOUNT, SharedStorage
from ..vos.kernel import DEFAULT_HZ, DEFAULT_QUANTUM_S, DEFAULT_SYSCALL_CYCLES, Kernel


@dataclass
class NodeSpec:
    """Hardware/OS parameters for one blade."""

    ncpus: int = 1
    hz: float = DEFAULT_HZ
    quantum_s: float = DEFAULT_QUANTUM_S
    syscall_overhead_cycles: int = DEFAULT_SYSCALL_CYCLES
    ram_bytes: int = int(2.5 * 2**30)
    #: checkpoint serialization rate, bytes of image per second.
    memcpy_bandwidth: float = 2e9
    #: image reconstruction rate on restart (page faults make restore
    #: slower than capture), bytes per second.
    restore_bandwidth: float = 1e9
    #: fixed per-pod kernel work per checkpoint (process freezing, page
    #: table and descriptor walks), seconds.
    ckpt_fixed_s: float = 0.08
    #: the slice of ``ckpt_fixed_s`` that must run while the pod is
    #: suspended on the zero-stall path: freeze plus the write-protect
    #: walk that arms copy-on-write.  The remainder (descriptor walks,
    #: serialization prep) runs post-resume against the frozen tables.
    capture_fixed_s: float = 0.015
    #: fixed per-pod kernel work per restart (pod creation, address
    #: space rebuild), seconds.
    restart_fixed_s: float = 0.15
    extra: dict = field(default_factory=dict)


class Node:
    """One blade: kernel + network stack + SAN mount."""

    def __init__(
        self,
        engine: Engine,
        index: int,
        name: str,
        real_ip: str,
        fabric: Fabric,
        vnet: Any,
        san: Optional[SharedStorage] = None,
        spec: Optional[NodeSpec] = None,
    ) -> None:
        self.engine = engine
        self.index = index
        self.name = name
        self.ip = real_ip
        self.spec = spec if spec is not None else NodeSpec()
        self.kernel = Kernel(
            engine,
            name,
            ncpus=self.spec.ncpus,
            hz=self.spec.hz,
            quantum_s=self.spec.quantum_s,
            syscall_overhead_cycles=self.spec.syscall_overhead_cycles,
        )
        self.stack = NetStack(self.kernel, fabric, real_ip, vnet=vnet)
        self.crashed = False
        if san is not None:
            self.kernel.vfs.mount(SAN_MOUNT, san)

    def serialize_delay(self, nbytes: int) -> float:
        """Simulated seconds to serialize ``nbytes`` of checkpoint image
        to memory (the dominant term of per-pod checkpoint latency)."""
        return nbytes / self.spec.memcpy_bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name!r}, ip={self.ip}, cpus={self.spec.ncpus})"
