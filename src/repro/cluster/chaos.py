"""Seeded chaos harness: randomized fault schedules against invariants.

One :func:`run_chaos` call builds a cluster, runs a checksummed
ping-pong application, drives a sequence of coordinated checkpoints (and
a crash recovery when a blade dies) while a seeded
:class:`~repro.cluster.faults.FaultPlan` fires faults at protocol phase
boundaries — then audits the world against the protocol's safety
invariants:

I1  Every operation either succeeds or leaves all surviving pods
    running (resumed, network unblocked) — "the operation will be
    gracefully aborted, and the application will resume its execution".
I2  No partial checkpoint image is ever visible as restartable: every
    container on the SAN either loads completely or does not exist.
I3  ``last_checkpoint`` is never corrupted: every image it points at
    (on surviving hardware) remains loadable.
I4  The single synchronization point is preserved: within each
    successful checkpoint, every Agent's meta-data arrives before any
    Agent is sent ``continue``.

Everything is derived from the one ``seed`` — the cluster RNG, the
fault plan, and the driver's choices — so a failing seed re-runs to the
*identical* event trace (compare :attr:`ChaosReport.trace`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..vos import build_program, imm, program
from .builder import Cluster
from .faults import (
    ASYNC_CKPT_PHASES,
    CAS_PHASES,
    CHECKPOINT_PHASES,
    MANAGER_PHASES,
    PRECOPY_PHASES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)

MOD = (1 << 61) - 1

SRV_POD = "chaos-srv"
CLI_POD = "chaos-cli"


def _roll(acc: int, msg: bytes) -> int:
    return (acc * 31 + int.from_bytes(msg, "big")) % MOD


def _reply_of(msg: bytes) -> bytes:
    return (int.from_bytes(msg, "big") + 1).to_bytes(8, "big")


def _i2msg(i: int) -> bytes:
    return i.to_bytes(8, "big")


def expected_sums(rounds: int) -> Tuple[int, int]:
    """(client checksum, server checksum) of a correct run."""
    csum = ssum = 0
    for i in range(rounds):
        msg = _i2msg(i)
        ssum = _roll(ssum, msg)
        csum = _roll(csum, _reply_of(msg))
    return csum, ssum


@program("chaos.pp-server")
def _pp_server(b, *, port, rounds, compute=150_000, dirty_rate=0):
    if dirty_rate:
        b.set_dirty_rate(dirty_rate)
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(8))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.mov("sum", imm(0))
    with b.for_range("i", imm(0), imm(rounds)):
        b.syscall("m", "recv", "cfd", imm(8), imm(0))
        b.op("sum", _roll, "sum", "m")
        b.compute(imm(compute))
        b.op("reply", _reply_of, "m")
        b.syscall(None, "send", "cfd", "reply", imm(0))
    b.syscall(None, "close", "cfd")
    b.halt(imm(0))


@program("chaos.pp-client")
def _pp_client(b, *, server, port, rounds, compute=150_000, dirty_rate=0):
    if dirty_rate:
        b.set_dirty_rate(dirty_rate)
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((server, port)))
    b.mov("sum", imm(0))
    with b.for_range("i", imm(0), imm(rounds)):
        b.op("msg", _i2msg, "i")
        b.syscall(None, "send", "fd", "msg", imm(0))
        b.syscall("r", "recv", "fd", imm(8), imm(0))
        b.op("sum", _roll, "sum", "r")
        b.compute(imm(compute))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


@dataclass
class ChaosReport:
    """Everything a failing seed needs to be diagnosed and replayed."""

    seed: int
    plan: List[Dict[str, Any]]
    #: injector event trace: (time, phase, node, pod, fired_kinds).
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    #: faults that actually fired: (time, kind, phase, node, pod).
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    #: (op kind, op_id, status) per driver operation, in order.
    ops: List[Tuple[str, int, str]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    crashed_nodes: List[str] = field(default_factory=list)
    app_finished: bool = False
    #: deterministic JSONL span dump when ``run_chaos(trace_spans=True)``
    #: — byte-identical across runs of the same seed (the determinism
    #: oracle the chaos tests diff).
    span_dump: Optional[str] = None


def run_chaos(seed: int, n_nodes: int = 4, n_ops: int = 4, rounds: int = 300,
              until: float = 300.0, trace_spans: bool = False) -> ChaosReport:
    """One chaos episode; returns the audited :class:`ChaosReport`."""
    from ..core.manager import Manager, PhaseTimeouts
    from ..core.pipeline import FileSink

    cluster = Cluster.build(n_nodes, seed=seed)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    injector = FaultInjector(
        cluster, FaultPlan.random(seed, [n.name for n in cluster.nodes])).install()
    engine = cluster.engine
    drv_rng = random.Random(seed ^ 0x5DEECE66D)
    # tight per-phase deadlines: faults inject multi-second stalls, and
    # the episode has to detect and clean them up well inside `until`
    timeouts = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                             flush=20.0, load=5.0, restart_done=15.0, drain=3.0)
    grace = timeouts.barrier + timeouts.done + 2.0  # agents' unilateral abort window

    # the application under test (kept off blade0, where the Manager lives)
    srv_node, cli_node = cluster.node(1), cluster.node(2 % n_nodes)
    pod_srv = cluster.create_pod(srv_node, SRV_POD)
    pod_cli = cluster.create_pod(cli_node, CLI_POD)
    srv = srv_node.kernel.spawn(
        build_program("chaos.pp-server", port=9300, rounds=rounds), pod_id=SRV_POD)
    cli = cli_node.kernel.spawn(
        build_program("chaos.pp-client", server=pod_srv.vip, port=9300, rounds=rounds),
        pod_id=CLI_POD)

    report = ChaosReport(seed=seed, plan=injector.plan.describe(),
                         trace=injector.trace, fired=injector.fired)
    san_paths: List[Tuple[str, str]] = []   # (path, pod) every op wrote to

    def surviving_targets(pod_id: str):
        for node in cluster.nodes:
            if not node.crashed and pod_id in node.kernel.pods:
                return node
        return None

    def check_resumed(label: str):
        """I1: surviving pods are running — not suspended, not blocked."""
        for pod_id in (SRV_POD, CLI_POD):
            node = surviving_targets(pod_id)
            if node is None:
                continue
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"I1 {label}: {pod_id} left suspended on {node.name}")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"I1 {label}: {pod_id} vip still firewalled on {node.name}")

    def driver():
        for i in range(n_ops):
            use_files = drv_rng.random() < 0.7
            targets = []
            for pod_id in (SRV_POD, CLI_POD):
                node = surviving_targets(pod_id)
                if node is None:
                    continue
                if use_files:
                    uri = f"file:/san/chaos-{pod_id}-{i}.img"
                    san_paths.append((f"/san/chaos-{pod_id}-{i}.img", pod_id))
                else:
                    uri = "mem"
                targets.append((node.name, pod_id, uri))
            if len(targets) < 2:
                # a blade died and took a pod with it: recover from the
                # last good checkpoint (the motivating use case)
                if manager.last_checkpoint is not None and manager.last_checkpoint.ok:
                    res = yield from manager.recover_task(timeouts=timeouts)
                    report.ops.append(("recover", res.op_id, res.status))
                    if not res.ok:
                        return
                    yield engine.sleep(1.0)
                    continue
                return
            res = yield from manager.checkpoint_task(
                targets, deadline=30.0, timeouts=timeouts)
            report.ops.append(("checkpoint", res.op_id, res.status))
            if not res.ok:
                # give partitioned Agents their unilateral-abort window,
                # then audit that the application is running again
                yield engine.sleep(grace)
                check_resumed(f"op{res.op_id}")
            yield engine.sleep(drv_rng.uniform(0.5, 2.0))

    engine.spawn(driver(), name="chaos-driver")
    engine.run(until=until)

    report.crashed_nodes = [n.name for n in cluster.nodes if n.crashed]

    # ---- I2: nothing partial is visible as restartable on the SAN ----
    home = cluster.node(0)
    for path, pod_id in san_paths:
        sink = FileSink(cluster.san, home.kernel.vfs, path)
        if not sink.exists():
            continue
        try:
            sink.load(pod_id)
        except Exception as err:  # noqa: BLE001 - any load failure is the violation
            report.violations.append(f"I2: partial image visible at {path}: {err}")

    # ---- I3: the last good checkpoint stayed restorable ----
    last = manager.last_checkpoint
    if last is not None and last.ok:
        for node_name, pod_id, uri in last.targets:
            if uri.startswith("file:"):
                sink = FileSink(cluster.san, home.kernel.vfs, uri[len("file:"):])
                try:
                    sink.load(pod_id)
                except Exception as err:  # noqa: BLE001
                    report.violations.append(
                        f"I3: last_checkpoint {uri} unloadable: {err}")
            else:
                node = cluster.node_by_name(node_name)
                if node.crashed:
                    continue  # lost with the blade, not corrupted
                if not manager.agents[node_name].mem_sink.load(pod_id):
                    report.violations.append(
                        f"I3: last_checkpoint mem image for {pod_id} missing on {node_name}")

    # ---- I4: meta-all-received before any continue, per successful op ----
    for kind, op_id, status in report.ops:
        if kind != "checkpoint" or status != "ok":
            continue
        marker = f"op{op_id}"
        idx = [i for i, ev in enumerate(report.trace)
               if ev[1] in ("manager.op_start", "manager.op_end") and ev[3] == marker]
        if len(idx) != 2:
            continue
        window = report.trace[idx[0]:idx[1] + 1]
        meta_ts = [ev[0] for ev in window if ev[1] == "manager.meta_recv"]
        cont_ts = [ev[0] for ev in window if ev[1] == "manager.continue_sent"]
        if meta_ts and cont_ts and max(meta_ts) > min(cont_ts):
            report.violations.append(
                f"I4: op{op_id} sent continue before all meta-data arrived")

    # ---- end-to-end correctness when the run could complete ----
    if srv is not None and cli is not None:
        sums = final_sums(cluster)
        report.app_finished = None not in sums
        if report.app_finished and sums != expected_sums(rounds):
            report.violations.append(
                f"checksum mismatch: {sums} != {expected_sums(rounds)}")
        if not report.crashed_nodes and not report.app_finished:
            report.violations.append(
                "application did not finish despite no node crash")
    if tracer is not None:
        from ..obs import to_jsonl

        report.span_dump = to_jsonl(tracer)
    return report


def final_sums(cluster: Cluster) -> Tuple[Optional[int], Optional[int]]:
    """(client sum, server sum) from wherever the processes ended up."""
    csum = ssum = None
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "chaos.pp-client" and proc.exit_code == 0:
                csum = proc.regs["sum"]
            elif proc.program.name == "chaos.pp-server" and proc.exit_code == 0:
                ssum = proc.regs["sum"]
    return csum, ssum


# ---------------------------------------------------------------------------
# live-migration chaos
# ---------------------------------------------------------------------------

#: fault kinds that make sense inside pre-copy rounds (no SAN traffic
#: happens there, so the storage faults are excluded).
MIGRATION_FAULT_KINDS = ("crash_node", "link_drop", "link_delay", "hang")


@dataclass
class MigrationChaosReport:
    """One audited live-migration chaos episode (see
    :func:`run_migration_chaos`)."""

    seed: int
    plan: List[Dict[str, Any]]
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    #: (checkpoint status, restart status, bailout, pre-copy rounds run),
    #: or None when the driver never got a result back.
    migration: Optional[Tuple[str, str, Optional[str], int]] = None
    migrated_ok: bool = False
    violations: List[str] = field(default_factory=list)
    crashed_nodes: List[str] = field(default_factory=list)
    app_finished: bool = False
    span_dump: Optional[str] = None


# ---------------------------------------------------------------------------
# Manager-failover chaos
# ---------------------------------------------------------------------------

@dataclass
class FailoverChaosReport:
    """One audited Manager-failover chaos episode (see
    :func:`run_failover_chaos`)."""

    seed: int
    #: the ``manager.ledger.*`` crossing the Manager was killed at.
    crash_phase: str
    plan: List[Dict[str, Any]]
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    #: (op kind, op_id, status) per driver operation, in order.
    ops: List[Tuple[str, int, str]] = field(default_factory=list)
    #: what the takeover replica did: (op_id, phase_at_claim, outcome).
    takeover: Optional[List[Tuple[int, str, str]]] = None
    manager_crashed: bool = False
    violations: List[str] = field(default_factory=list)
    app_finished: bool = False
    span_dump: Optional[str] = None


def run_failover_chaos(seed: int, crash_phase: str, n_nodes: int = 4,
                       rounds: int = 220, until: float = 120.0,
                       trace_spans: bool = False) -> FailoverChaosReport:
    """One Manager-failover chaos episode; returns the audited report.

    The checksummed ping-pong pair runs while ``mgr0`` drives a
    file-target coordinated checkpoint and a ``crash_manager`` fault
    kills it exactly at the ``crash_phase`` ledger crossing — between
    "this phase's record is durable" and "the next phase's actions run",
    the worst case for the op left in flight.  A supervisor detects the
    dead Manager, waits out its lease, deploys ``mgr1`` with
    :meth:`~repro.core.manager.Manager.deploy_replica`, and runs
    :meth:`~repro.core.manager.Manager.takeover_task`; the driver then
    pushes a *continuity* checkpoint through whichever Manager is alive.
    Audited invariants:

    F1  Every ledger op ends terminal (``commit`` or ``aborted``) — the
        takeover leaves nothing in flight.
    F2  No partial image is visible as restartable on the SAN (I2).
    F3  Both pods end resumed — running, not suspended, not firewalled —
        on exactly one node each (I1 across the takeover).
    F4  The continuity checkpoint through the replacement Manager
        succeeds (no blade ever crashed in this matrix).
    F5  The application finishes with correct checksums.
    F6  If the victim op was non-terminal at the crash, the takeover
        claimed it and resolved it (resumed / re-driven / aborted).

    For ``crash_phase="manager.ledger.abort"`` the plan also hangs the
    server Agent at suspend past the meta deadline, forcing the victim
    op onto the abort path (the crossing cannot fire otherwise).

    Determinism is the caller's oracle: two runs of the same
    ``(seed, crash_phase)`` must produce identical ``trace``/``fired``
    sequences (and ``span_dump`` when tracing).
    """
    from ..core.manager import Manager, PhaseTimeouts
    from ..core.pipeline import FileSink
    from ..storage.ledger import OpLedger

    cluster = Cluster.build(n_nodes, seed=seed)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    engine = cluster.engine
    drv_rng = random.Random(seed ^ 0x9E3779B9)
    timeouts = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                             flush=20.0, load=5.0, restart_done=15.0, drain=3.0)
    grace = timeouts.barrier + timeouts.done + 2.0
    lease_s = 3.0

    srv_node, cli_node = cluster.node(1), cluster.node(2 % n_nodes)
    faults = [FaultSpec(kind="crash_manager", phase=crash_phase)]
    if crash_phase == "manager.ledger.abort":
        # the abort crossing only exists on a failed op: stall the server
        # Agent at suspend past the Manager's meta deadline
        faults.insert(0, FaultSpec(kind="hang", phase="agent.suspend",
                                   node=srv_node.name, seconds=9.0))
    injector = FaultInjector(cluster, FaultPlan(seed=seed, faults=faults)).install()

    pod_srv = cluster.create_pod(srv_node, SRV_POD)
    cluster.create_pod(cli_node, CLI_POD)
    srv = srv_node.kernel.spawn(
        build_program("chaos.pp-server", port=9300, rounds=rounds), pod_id=SRV_POD)
    cli = cli_node.kernel.spawn(
        build_program("chaos.pp-client", server=pod_srv.vip, port=9300, rounds=rounds),
        pod_id=CLI_POD)

    report = FailoverChaosReport(seed=seed, crash_phase=crash_phase,
                                 plan=injector.plan.describe(),
                                 trace=injector.trace, fired=injector.fired)
    san_paths = [(f"/san/fo-{SRV_POD}.img", SRV_POD),
                 (f"/san/fo-{CLI_POD}.img", CLI_POD)]
    state: Dict[str, Any] = {"replica": None, "takeover": None}

    def active_manager():
        return state["replica"] if state["replica"] is not None else manager

    def check_resumed(label: str):
        for pod_id in (SRV_POD, CLI_POD):
            hosts = [n for n in cluster.nodes
                     if not n.crashed and pod_id in n.kernel.pods]
            if len(hosts) != 1:
                report.violations.append(
                    f"F3 {label}: {pod_id} active on "
                    f"{[n.name for n in hosts] or 'no node'}")
                continue
            node = hosts[0]
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"F3 {label}: {pod_id} left suspended on {node.name}")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"F3 {label}: {pod_id} vip still firewalled on {node.name}")

    def supervisor():
        # the Manager's own failure detector: poll the process, wait out
        # its lease, then take over against the shared ledger
        while not manager.crashed:
            if engine.now >= until - 45.0:
                return
            yield engine.sleep(0.25)
        yield engine.sleep(lease_s + 1.0)
        replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
        state["replica"] = replica
        actions = yield from replica.takeover_task(timeouts=timeouts,
                                                   lease_s=lease_s)
        state["takeover"] = [tuple(a) for a in actions]
        report.takeover = state["takeover"]

    def driver():
        yield engine.sleep(round(drv_rng.uniform(0.05, 0.3), 4))
        # the victim op: always file targets so every MANAGER_PHASES
        # crossing (including flush) exists on the success path
        targets = [(srv_node.name, SRV_POD, f"file:{san_paths[0][0]}"),
                   (cli_node.name, CLI_POD, f"file:{san_paths[1][0]}")]
        task = manager.checkpoint(targets, deadline=30.0, timeouts=timeouts,
                                  lease_s=lease_s)
        ok, res = yield engine.timeout(task.finished, 60.0)
        if res is not None:
            report.ops.append(("checkpoint", res.op_id, res.status))
        else:
            report.ops.append(("checkpoint", 0, "crashed"))
        # wait out the takeover when the Manager died
        while manager.crashed and state["takeover"] is None:
            yield engine.sleep(0.25)
        yield engine.sleep(grace)  # parked sessions settle (abort/flush)
        check_resumed("post-takeover")
        # continuity: the surviving Manager must drive new ops
        mgr = active_manager()
        use_files = drv_rng.random() < 0.5
        targets2 = []
        for node, pod_id in ((srv_node, SRV_POD), (cli_node, CLI_POD)):
            if use_files:
                path = f"/san/fo-cont-{pod_id}.img"
                san_paths.append((path, pod_id))
                targets2.append((node.name, pod_id, f"file:{path}"))
            else:
                targets2.append((node.name, pod_id, "mem"))
        res2 = yield from mgr.checkpoint_task(targets2, deadline=30.0,
                                              timeouts=timeouts,
                                              lease_s=lease_s)
        report.ops.append(("checkpoint", res2.op_id, res2.status))
        if not res2.ok:
            report.violations.append(
                f"F4: continuity checkpoint via {mgr.name} ended "
                f"{res2.status}: {res2.errors}")

    engine.spawn(supervisor(), name="failover-supervisor")
    engine.spawn(driver(), name="failover-driver")
    engine.run(until=until)

    report.manager_crashed = manager.crashed

    # ---- F1: the ledger holds no non-terminal op ----
    ledger = OpLedger(cluster.san)
    orphans = {op_id: op.phase for op_id, op in ledger.replay().items()
               if not op.terminal}
    if orphans:
        report.violations.append(f"F1: non-terminal ledger ops: {orphans}")

    # ---- F2: nothing partial is visible as restartable on the SAN ----
    home = cluster.node(0)
    for path, pod_id in san_paths:
        sink = FileSink(cluster.san, home.kernel.vfs, path)
        if not sink.exists():
            continue
        try:
            sink.load(pod_id)
        except Exception as err:  # noqa: BLE001 - any load failure is the violation
            report.violations.append(f"F2: partial image visible at {path}: {err}")

    # ---- F3 at end state ----
    check_resumed("final")

    # ---- F6: a non-terminal victim op was claimed and resolved ----
    if report.manager_crashed:
        if state["replica"] is None:
            report.violations.append("F6: Manager crashed but no replica deployed")
        elif report.takeover is None:
            report.violations.append("F6: takeover never completed")
        else:
            for op_id, _phase, outcome in report.takeover:
                if outcome not in ("resumed", "redriven", "aborted"):
                    report.violations.append(
                        f"F6: op{op_id} takeover outcome {outcome!r}")
        # the crash must actually have fired at the requested crossing
        if not any(kind == "crash_manager" and phase == crash_phase
                   for (_t, kind, phase, _n, _p) in report.fired):
            report.violations.append(
                f"F6: crash_manager did not fire at {crash_phase}")
    else:
        report.violations.append(
            f"F6: Manager never crashed (no {crash_phase} crossing?)")

    # ---- the last committed checkpoint stayed restorable (I3) ----
    mgr = active_manager()
    last = mgr.last_checkpoint
    if last is not None and last.ok:
        for node_name, pod_id, uri in last.targets:
            if uri.startswith("file:"):
                sink = FileSink(cluster.san, home.kernel.vfs, uri[len("file:"):])
                try:
                    sink.load(pod_id)
                except Exception as err:  # noqa: BLE001
                    report.violations.append(
                        f"I3: last_checkpoint {uri} unloadable: {err}")
            elif not mgr.agents[node_name].mem_sink.load(pod_id):
                report.violations.append(
                    f"I3: last_checkpoint mem image for {pod_id} missing on {node_name}")

    # ---- I4: meta-all-received before any continue, per successful op ----
    for kind, op_id, status in report.ops:
        if kind != "checkpoint" or status != "ok":
            continue
        marker = f"op{op_id}"
        idx = [i for i, ev in enumerate(report.trace)
               if ev[1] in ("manager.op_start", "manager.op_end") and ev[3] == marker]
        if len(idx) != 2:
            continue
        window = report.trace[idx[0]:idx[1] + 1]
        meta_ts = [ev[0] for ev in window if ev[1] == "manager.meta_recv"]
        cont_ts = [ev[0] for ev in window if ev[1] == "manager.continue_sent"]
        if meta_ts and cont_ts and max(meta_ts) > min(cont_ts):
            report.violations.append(
                f"I4: op{op_id} sent continue before all meta-data arrived")

    # ---- F5: end-to-end correctness (no blade ever crashes here) ----
    if srv is not None and cli is not None:
        sums = final_sums(cluster)
        report.app_finished = None not in sums
        if report.app_finished and sums != expected_sums(rounds):
            report.violations.append(
                f"F5: checksum mismatch: {sums} != {expected_sums(rounds)}")
        if not report.app_finished:
            report.violations.append("F5: application did not finish")
    if tracer is not None:
        from ..obs import to_jsonl

        report.span_dump = to_jsonl(tracer)
    return report


def run_migration_chaos(seed: int, n_nodes: int = 5, rounds: int = 2500,
                        until: float = 300.0,
                        trace_spans: bool = False) -> MigrationChaosReport:
    """One live-migration chaos episode; returns the audited report.

    A checksummed ping-pong pair (with a nonzero dirty rate, so pre-copy
    has a moving working set to chase) runs on two blades while a seeded
    fault plan fires at the *pre-copy* phase boundaries.  The driver live-
    migrates both pods onto spare blades mid-run, then the world is
    audited against the migration's safety invariant:

    M1  **Exactly one copy.**  At no surviving node pair does a pod end
        up active twice: on success the destination runs it and the
        source copy is destroyed; on abort the source resumes (unless
        its blade crashed); never both.
    M2  End-to-end checksums match whenever the application finished.

    Determinism is the caller's oracle: two runs of the same seed must
    produce identical ``trace``/``fired`` sequences (and ``span_dump``
    when tracing).
    """
    from ..core.manager import Manager, PhaseTimeouts
    from ..core.streaming import migrate_task

    cluster = Cluster.build(n_nodes, seed=seed)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    plan = FaultPlan.random(seed, [n.name for n in cluster.nodes],
                            phases=PRECOPY_PHASES, kinds=MIGRATION_FAULT_KINDS)
    injector = FaultInjector(cluster, plan).install()
    engine = cluster.engine
    drv_rng = random.Random(seed ^ 0x3C6EF372)
    timeouts = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                             flush=20.0, load=5.0, restart_done=15.0, drain=3.0)
    grace = timeouts.barrier + timeouts.done + 2.0

    src_srv, src_cli = cluster.node(1), cluster.node(2 % n_nodes)
    dst_srv = cluster.node(3 % n_nodes).name
    dst_cli = cluster.node(4 % n_nodes).name
    pod_srv = cluster.create_pod(src_srv, SRV_POD)
    cluster.create_pod(src_cli, CLI_POD)
    srv = src_srv.kernel.spawn(
        build_program("chaos.pp-server", port=9300, rounds=rounds,
                      dirty_rate=64_000_000), pod_id=SRV_POD)
    cli = src_cli.kernel.spawn(
        build_program("chaos.pp-client", server=pod_srv.vip, port=9300,
                      rounds=rounds, dirty_rate=64_000_000), pod_id=CLI_POD)

    report = MigrationChaosReport(seed=seed, plan=injector.plan.describe(),
                                  trace=injector.trace, fired=injector.fired)
    moves = [(src_srv.name, SRV_POD, dst_srv), (src_cli.name, CLI_POD, dst_cli)]
    state: Dict[str, Any] = {}

    def driver():
        yield engine.sleep(round(drv_rng.uniform(0.05, 0.35), 4))
        mig = yield from migrate_task(manager, moves, live=True,
                                      precopy_rounds=4, dirty_threshold=4096,
                                      deadline=30.0, timeouts=timeouts)
        state["mig"] = mig
        if not mig.ok:
            # partitioned agents get their unilateral-abort window before
            # the end-state audit expects the source resumed
            yield engine.sleep(grace)

    engine.spawn(driver(), name="migration-chaos-driver")
    engine.run(until=until)

    report.crashed_nodes = [n.name for n in cluster.nodes if n.crashed]
    mig = state.get("mig")
    if mig is not None:
        report.migration = (mig.checkpoint.status, mig.restart.status,
                            mig.bailout, len(mig.rounds))
        report.migrated_ok = mig.ok

    # ---- M1: exactly one active copy of each pod ----
    dst_of = {pod_id: dst for _src, pod_id, dst in moves}
    src_of = {pod_id: src for src, pod_id, _dst in moves}
    for pod_id in (SRV_POD, CLI_POD):
        hosts = [n.name for n in cluster.nodes
                 if not n.crashed and pod_id in n.kernel.pods]
        if len(hosts) > 1:
            report.violations.append(
                f"M1: {pod_id} active on multiple nodes: {hosts}")
            continue
        if mig is None:
            continue
        if mig.ok:
            if hosts != [dst_of[pod_id]]:
                report.violations.append(
                    f"M1: migration succeeded but {pod_id} lives on "
                    f"{hosts or 'no node'}, not {dst_of[pod_id]}")
        else:
            src = src_of[pod_id]
            if src in report.crashed_nodes:
                continue  # lost with the blade, not a protocol violation
            if hosts != [src]:
                report.violations.append(
                    f"M1: migration aborted but {pod_id} lives on "
                    f"{hosts or 'no node'}, not back on {src}")
                continue
            node = cluster.node_by_name(src)
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"M1: {pod_id} left suspended on {src} after abort")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"M1: {pod_id} vip still firewalled on {src} after abort")

    # ---- M2: checksums whenever the application could finish ----
    if srv is not None and cli is not None:
        sums = final_sums(cluster)
        report.app_finished = None not in sums
        if report.app_finished and sums != expected_sums(rounds):
            report.violations.append(
                f"M2: checksum mismatch: {sums} != {expected_sums(rounds)}")
        if not report.crashed_nodes and not report.app_finished:
            report.violations.append(
                "M2: application did not finish despite no node crash")
    if tracer is not None:
        from ..obs import to_jsonl

        report.span_dump = to_jsonl(tracer)
    return report


# ---------------------------------------------------------------------------
# fleet-campaign chaos
# ---------------------------------------------------------------------------

#: fault kinds that make sense at fleet wave boundaries (SAN faults are
#: covered by the per-op batteries; here the interesting failures are
#: blades dying and links misbehaving *between* units).
FLEET_FAULT_KINDS = ("crash_node", "link_drop", "link_delay", "hang")


@dataclass
class FleetChaosReport:
    """One audited fleet-campaign chaos episode (see
    :func:`run_fleet_chaos`)."""

    seed: int
    #: drain | evacuate | checkpoint — drawn from the seed.
    scenario: str
    #: nodes being drained/evacuated ([] for the checkpoint scenario).
    targets: List[str]
    plan: List[Dict[str, Any]]
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    max_inflight: int = 0
    #: (status, ok, failed, skipped, threshold_tripped) of the *final*
    #: campaign run (the resumed one when the Manager was crashed).
    campaign: Optional[Tuple[str, int, int, int, bool]] = None
    #: per-run gate high-water marks, in run order.
    peaks: List[int] = field(default_factory=list)
    #: what the replica's op-level takeover did (None: no failover).
    takeover: Optional[List[Tuple[int, str, str]]] = None
    #: what the replica's campaign resume did (None: no failover).
    resume: Optional[List[Tuple[int, str, str]]] = None
    manager_crashed: bool = False
    crashed_nodes: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    span_dump: Optional[str] = None
    #: assembled campaign trace (JSONL / Chrome form) and its SLO audit —
    #: only when ``trace_spans`` and a Manager survived to own the ledger.
    assembled: Optional[str] = None
    assembled_chrome: Optional[str] = None
    slo: Optional[Dict[str, Any]] = None


def run_fleet_chaos(seed: int, n_nodes: int = 8, n_pods: int = 24,
                    until: float = 900.0,
                    trace_spans: bool = False) -> FleetChaosReport:
    """One fleet-campaign chaos episode; returns the audited report.

    A cluster of idle pods (blades 1..5 populated, the rest spare) runs
    one seeded scenario — drain a blade, evacuate two, or checkpoint the
    whole fleet — while a seeded fault plan fires at the ``fleet.*``
    wave boundaries (blade crashes, link drops/delays, hangs), possibly
    plus a ``crash_manager`` mid-campaign.  On a Manager crash a
    supervisor waits out the lease, deploys a replica, resolves orphaned
    *ops* with :meth:`~repro.core.manager.Manager.takeover_task`, then
    finishes the orphaned *campaign* with
    :func:`~repro.fleet.campaign.resume_campaigns_task`.  Audited
    invariants:

    FC1  **No pod lost or duplicated.**  Every fleet pod is active on
         exactly one surviving node; a missing pod is explained only by
         a crashed blade that still holds it.
    FC2  **Threshold respected.**  Once the failed fraction trips the
         threshold, no retry attempt starts, at most ``max_inflight``
         already-admitted units run their first attempt, and the halted
         campaign really does exceed its threshold.
    FC3  **Bounded concurrency.**  Across all runs (original and
         resumed), overlapping unit attempts never exceed
         ``max_inflight``; each run's gate high-water mark agrees.
    FC4  (caller's oracle) Same seed → byte-identical ``trace`` /
         ``fired`` / ``span_dump``.
    FC5  **Clean end state.**  Every ok pod runs unsuspended and
         unfirewalled, off the evacuated set; every failed/skipped
         migration leaves its pod on the source blade (unless that
         blade crashed); a fully-ok drain leaves the node empty; and
         with a live Manager at the end every ledger campaign is
         terminal.
    FC6  **Complete assembled trace** (``trace_spans`` only).  The
         ledger + span dump stitch into exactly one campaign tree whose
         coverage accounts for every pod-unit the ledger knows about —
         including ops adopted after takeover — and the tree passes the
         SLO audit implied by the campaign's own journaled policy.
    """
    from ..core.manager import Manager
    from ..fleet import (
        FLEET_TIMEOUTS,
        FleetPolicy,
        build_fleet_world,
        checkpoint_fleet_task,
        drain_campaign,
        evacuate_campaign,
        resume_campaigns_task,
    )
    from ..fleet.campaign import CampaignResult
    from ..storage.ledger import OpLedger
    from .faults import FLEET_PHASES

    drv_rng = random.Random(seed ^ 0x51EE7F1E)
    scenario = drv_rng.choice(("drain", "evacuate", "checkpoint"))
    populated = [f"blade{i}" for i in range(1, 6)]
    if scenario == "drain":
        targets = [drv_rng.choice(populated)]
    elif scenario == "evacuate":
        targets = sorted(drv_rng.sample(populated, 2))
    else:
        targets = []
    policy = FleetPolicy(max_inflight=drv_rng.choice((2, 3, 4)),
                         wave_barrier=drv_rng.random() < 0.5,
                         failure_threshold=0.5, retries=1,
                         deadline=30.0, lease_s=3.0)

    cluster, manager, pods = build_fleet_world(
        n_nodes, n_pods, seed=seed, first_node=1, last_node=5)
    engine = cluster.engine
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(engine).install(cluster)
    plan = FaultPlan.random(seed, [n.name for n in cluster.nodes],
                            phases=FLEET_PHASES, kinds=FLEET_FAULT_KINDS)
    if drv_rng.random() < 0.4:
        plan.faults.append(FaultSpec(
            kind="crash_manager",
            phase=drv_rng.choice(("fleet.pod_start", "fleet.pod_done",
                                  "fleet.wave_done")),
            after=drv_rng.randint(1, 8)))
    injector = FaultInjector(cluster, plan).install()

    report = FleetChaosReport(seed=seed, scenario=scenario, targets=targets,
                              plan=injector.plan.describe(),
                              trace=injector.trace, fired=injector.fired,
                              max_inflight=policy.max_inflight)
    lease_s = 3.0
    state: Dict[str, Any] = {"orig": None, "resumed": [], "resume": None,
                             "takeover": None, "replica": None}

    def supervisor():
        while not manager.crashed:
            if engine.now >= until - 90.0:
                return
            yield engine.sleep(0.25)
        yield engine.sleep(lease_s + 1.0)
        replica = Manager.deploy_replica(cluster, manager.agents, name="mgr1")
        state["replica"] = replica
        # op-level first: resolve any orphaned checkpoint/migration op
        # (resume suspended pods, abort torn streams) before re-driving
        # the campaign's unfinished units on clean pods
        took = yield from replica.takeover_task(timeouts=FLEET_TIMEOUTS,
                                                lease_s=lease_s)
        state["takeover"] = [tuple(a) for a in took]
        acts = yield from resume_campaigns_task(replica,
                                                timeouts=FLEET_TIMEOUTS,
                                                lease_s=lease_s,
                                                collect=state["resumed"])
        state["resume"] = [tuple(a) for a in acts]

    def driver():
        yield engine.sleep(round(drv_rng.uniform(0.05, 0.3), 4))
        if scenario == "drain":
            task = drain_campaign(manager, targets[0], policy=policy,
                                  timeouts=FLEET_TIMEOUTS).run()
        elif scenario == "evacuate":
            task = evacuate_campaign(manager, targets, policy=policy,
                                     timeouts=FLEET_TIMEOUTS).run()
        else:
            task = manager._spawn(
                checkpoint_fleet_task(manager, policy=policy,
                                      timeouts=FLEET_TIMEOUTS),
                name="fleet-chaos-ckpt")
        _ok, res = yield engine.timeout(task.finished, until - 120.0)
        state["orig"] = res

    engine.spawn(supervisor(), name="fleet-chaos-supervisor")
    engine.spawn(driver(), name="fleet-chaos-driver")
    engine.run(until=until)

    report.manager_crashed = manager.crashed
    report.crashed_nodes = [n.name for n in cluster.nodes if n.crashed]
    report.takeover = state["takeover"]
    report.resume = state["resume"]
    runs: List[CampaignResult] = [r for r in [state["orig"]] if r is not None]
    runs += state["resumed"]
    report.peaks = [r.peak_inflight for r in runs]
    if runs:
        final = runs[-1]
        c = final.counts()
        report.campaign = (final.status, c["ok"], c["failed"], c["skipped"],
                           final.threshold_tripped)

    # the authoritative per-pod end state: later runs override earlier
    outcomes: Dict[str, Any] = {}
    for r in runs:
        outcomes.update(r.pods)

    if report.manager_crashed and state["resume"] is None:
        report.violations.append("FC0: Manager crashed but no resume ran")
    if not runs:
        report.violations.append("FC0: no campaign result from any run")

    # ---- FC1: every fleet pod exactly once on surviving hardware ----
    # crash_node destroys its pods, so a lost pod is *explained* when
    # any blade it plausibly lived on (its source, or a migration
    # destination some attempt reached) crashed
    plausible: Dict[str, set] = {pod_id: {src} for src, pod_id in pods}
    for r in runs:
        for pod_id, out in r.pods.items():
            plausible.setdefault(pod_id, set()).add(out.node)
            if out.dest:
                plausible[pod_id].add(out.dest)
    crashed_set = set(report.crashed_nodes)

    def _crash_explained(pod_id: str) -> bool:
        return bool(plausible.get(pod_id, set()) & crashed_set)

    for _src, pod_id in pods:
        hosts = [n.name for n in cluster.nodes
                 if not n.crashed and pod_id in n.kernel.pods]
        if len(hosts) > 1:
            report.violations.append(
                f"FC1: {pod_id} active on multiple nodes: {hosts}")
        elif not hosts and not _crash_explained(pod_id):
            report.violations.append(
                f"FC1: {pod_id} lost with no crashed blade to explain it")

    # ---- FC2: the threshold really halts the campaign ----
    for run_idx, r in enumerate(runs):
        if not r.threshold_tripped:
            continue
        total = max(1, len(r.pods))
        # failures counted at each unit's *final* attempt
        last_attempt = {}
        for pod, wave, attempt, t0, t1, status in r.events:
            last_attempt[pod] = (attempt, t1, status)
        fail_times = sorted(t1 for (_a, t1, status) in last_attempt.values()
                            if status == "failed")
        trip_t = None
        for k, t1 in enumerate(fail_times, start=1):
            if k / total > policy.failure_threshold:
                trip_t = t1
                break
        if trip_t is None:
            report.violations.append(
                f"FC2: run{run_idx} halted but failures never exceeded "
                f"threshold ({len(fail_times)}/{total})")
            continue
        late_first = set()
        for pod, wave, attempt, t0, t1, status in r.events:
            if t0 <= trip_t:
                continue
            if attempt > 1:
                report.violations.append(
                    f"FC2: run{run_idx} retry of {pod} (attempt {attempt}) "
                    f"started after the threshold tripped")
            else:
                late_first.add(pod)
        if len(late_first) > policy.max_inflight:
            report.violations.append(
                f"FC2: run{run_idx} admitted {len(late_first)} first "
                f"attempts after the trip (> max_inflight "
                f"{policy.max_inflight})")

    # ---- FC3: overlapping attempts never exceed max_inflight ----
    deltas: List[Tuple[float, int]] = []
    for r in runs:
        for _pod, _wave, _attempt, t0, t1, _status in r.events:
            deltas.append((t0, +1))
            deltas.append((t1, -1))
        if r.peak_inflight > policy.max_inflight:
            report.violations.append(
                f"FC3: gate peak {r.peak_inflight} > max_inflight "
                f"{policy.max_inflight}")
    deltas.sort(key=lambda d: (d[0], d[1]))  # releases before acquires
    live = peak = 0
    for _t, d in deltas:
        live += d
        peak = max(peak, live)
    if peak > policy.max_inflight:
        report.violations.append(
            f"FC3: {peak} overlapping unit attempts > max_inflight "
            f"{policy.max_inflight}")

    # ---- FC5: clean end state ----
    evac = set(targets)
    for pod_id, out in sorted(outcomes.items()):
        hosts = [n for n in cluster.nodes
                 if not n.crashed and pod_id in n.kernel.pods]
        if out.status == "ok":
            if not hosts:
                if not _crash_explained(pod_id):
                    report.violations.append(f"FC5: ok pod {pod_id} vanished")
                continue
            node = hosts[0]
            if scenario != "checkpoint" and node.name in evac:
                report.violations.append(
                    f"FC5: ok pod {pod_id} still on evacuated {node.name}")
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"FC5: ok pod {pod_id} left suspended on {node.name}")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"FC5: ok pod {pod_id} still firewalled on {node.name}")
        elif scenario != "checkpoint":
            # failed/skipped moves leave the pod home (M1), unless home died
            if out.node in report.crashed_nodes:
                continue
            if [n.name for n in hosts] != [out.node]:
                report.violations.append(
                    f"FC5: {out.status} pod {pod_id} not on its source "
                    f"{out.node}: {[n.name for n in hosts] or 'gone'}")
    if scenario in ("drain", "evacuate") and runs and runs[-1].status == "ok":
        for name in targets:
            node = cluster.node_by_name(name)
            if not node.crashed and node.kernel.pods:
                report.violations.append(
                    f"FC5: campaign ok but {name} still hosts "
                    f"{sorted(node.kernel.pods)}")

    # ---- ledger: campaigns terminal whenever a Manager survived ----
    alive = (not manager.crashed) or state["replica"] is not None
    if alive and state["resume"] is not None or not manager.crashed:
        ledger = OpLedger(cluster.san)
        open_camps = {cid: lc.phase
                      for cid, lc in ledger.replay_campaigns().items()
                      if not lc.terminal}
        if open_camps:
            report.violations.append(
                f"FC5: non-terminal ledger campaigns: {open_camps}")

    if tracer is not None:
        from ..obs import assemble_campaigns, audit_campaign, to_jsonl

        report.span_dump = to_jsonl(tracer)
        # ---- FC6: the assembled trace accounts for every pod-unit ----
        # one tracer spans all Manager incarnations of the episode, so
        # the ledger + one dump must stitch into one complete tree
        traces = assemble_campaigns(OpLedger(cluster.san),
                                    dumps=(report.span_dump,))
        if len(traces) != 1:
            report.violations.append(
                f"FC6: expected one assembled campaign, got {len(traces)}")
        if traces:
            assembled = traces[-1]
            cov = assembled.coverage()
            if not cov["complete"]:
                report.violations.append(
                    "FC6: assembled trace missing pod-units: "
                    + ",".join(cov["missing"]))
            audit = audit_campaign(assembled)
            for v in audit.violations():
                report.violations.append(f"FC6: SLO {v.rule}: {v.detail}")
            report.assembled = assembled.to_jsonl()
            report.assembled_chrome = assembled.dumps_chrome()
            report.slo = audit.to_dict()
    return report


# ---------------------------------------------------------------------------
# zero-stall (async) incremental-checkpoint chaos
# ---------------------------------------------------------------------------

@dataclass
class AsyncChaosReport:
    """One audited async-incremental-checkpoint chaos episode (see
    :func:`run_async_chaos`)."""

    seed: int
    plan: List[Dict[str, Any]]
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    #: (op kind, op_id, status) per driver operation, in order.
    ops: List[Tuple[str, int, str]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    crashed_nodes: List[str] = field(default_factory=list)
    app_finished: bool = False
    span_dump: Optional[str] = None


def run_async_chaos(seed: int, n_nodes: int = 4, n_ops: int = 5,
                    rounds: int = 300, until: float = 300.0,
                    trace_spans: bool = False) -> AsyncChaosReport:
    """One async-checkpoint chaos episode; returns the audited report.

    The checksummed ping-pong pair (with a nonzero dirty rate, so the
    copy-on-write window has writes to catch) runs while the driver takes
    zero-stall *incremental* checkpoints (``async_ckpt=True`` with a
    delta filter) and a seeded fault plan fires at the checkpoint
    boundaries plus the new async crossings (capture end, post-resume
    encode, overlapped write-out).  Audited invariants:

    A1  A failed op leaves every surviving pod running (the serial
        invariant I1 holds even when the encoder ran past the resume).
    A2  No partial chain container is ever visible as restartable.
    A3  **Chain integrity.**  Every committed in-memory delta chain
        reassembles, and the reassembled payload is byte-identical to
        the full base the Agent's pipeline state holds — an aborted or
        faulted epoch can never leave a chain that restores to
        different bytes.
    A4  End-to-end checksums match whenever the application finished.
    """
    from ..core.manager import Manager, PhaseTimeouts
    from ..core.pipeline import FileSink, ImagePipeline

    cluster = Cluster.build(n_nodes, seed=seed)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    plan = FaultPlan.random(seed, [n.name for n in cluster.nodes],
                            phases=CHECKPOINT_PHASES + ASYNC_CKPT_PHASES)
    injector = FaultInjector(cluster, plan).install()
    engine = cluster.engine
    drv_rng = random.Random(seed ^ 0x1F123BB5)
    timeouts = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                             flush=20.0, load=5.0, restart_done=15.0, drain=3.0)
    grace = timeouts.barrier + timeouts.done + 2.0

    srv_node, cli_node = cluster.node(1), cluster.node(2 % n_nodes)
    pod_srv = cluster.create_pod(srv_node, SRV_POD)
    pod_cli = cluster.create_pod(cli_node, CLI_POD)
    srv = srv_node.kernel.spawn(
        build_program("chaos.pp-server", port=9310, rounds=rounds,
                      dirty_rate=25_000_000), pod_id=SRV_POD)
    cli = cli_node.kernel.spawn(
        build_program("chaos.pp-client", server=pod_srv.vip, port=9310,
                      rounds=rounds, dirty_rate=25_000_000), pod_id=CLI_POD)

    report = AsyncChaosReport(seed=seed, plan=injector.plan.describe(),
                              trace=injector.trace, fired=injector.fired)
    san_paths: List[Tuple[str, str]] = []

    def surviving_node(pod_id: str):
        for node in cluster.nodes:
            if not node.crashed and pod_id in node.kernel.pods:
                return node
        return None

    def check_resumed(label: str):
        for pod_id in (SRV_POD, CLI_POD):
            node = surviving_node(pod_id)
            if node is None:
                continue
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"A1 {label}: {pod_id} left suspended on {node.name}")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"A1 {label}: {pod_id} vip still firewalled on {node.name}")

    def driver():
        for i in range(n_ops):
            use_files = drv_rng.random() < 0.5
            targets = []
            for pod_id in (SRV_POD, CLI_POD):
                node = surviving_node(pod_id)
                if node is None:
                    continue
                if use_files:
                    uri = f"file:/san/async-{pod_id}-{i}.img"
                    san_paths.append((f"/san/async-{pod_id}-{i}.img", pod_id))
                else:
                    uri = "mem"
                targets.append((node.name, pod_id, uri))
            if len(targets) < 2:
                return
            res = yield from manager.checkpoint_task(
                targets, deadline=30.0, timeouts=timeouts,
                filters=[{"name": "delta"}], async_ckpt=True)
            report.ops.append(("checkpoint", res.op_id, res.status))
            if not res.ok:
                yield engine.sleep(grace)
                check_resumed(f"op{res.op_id}")
            yield engine.sleep(drv_rng.uniform(0.5, 2.0))

    engine.spawn(driver(), name="async-chaos-driver")
    engine.run(until=until)

    report.crashed_nodes = [n.name for n in cluster.nodes if n.crashed]

    # ---- A2: nothing partial is visible as restartable on the SAN ----
    home = cluster.node(0)
    for path, pod_id in san_paths:
        sink = FileSink(cluster.san, home.kernel.vfs, path)
        if not sink.exists():
            continue
        try:
            sink.load(pod_id)
        except Exception as err:  # noqa: BLE001 - any load failure is the violation
            report.violations.append(f"A2: partial image visible at {path}: {err}")

    # ---- A3: every committed delta chain restores byte-identically ----
    for node in cluster.nodes:
        if node.crashed:
            continue
        agent = manager.agents[node.name]
        for pod_id, chain in sorted(agent.pipeline_state.chains.items()):
            if not chain:
                continue
            try:
                reassembled = ImagePipeline.reassemble(list(chain))
            except Exception as err:  # noqa: BLE001
                report.violations.append(
                    f"A3: chain for {pod_id} on {node.name} unrestorable: {err}")
                continue
            base = agent.pipeline_state.bases.get(pod_id)
            if base is not None and reassembled.raw != base:
                report.violations.append(
                    f"A3: chain for {pod_id} on {node.name} reassembles to "
                    "different bytes than the committed base")

    # ---- A4: end-to-end correctness when the run could complete ----
    if srv is not None and cli is not None:
        sums = final_sums(cluster)
        report.app_finished = None not in sums
        if report.app_finished and sums != expected_sums(rounds):
            report.violations.append(
                f"A4: checksum mismatch: {sums} != {expected_sums(rounds)}")
        if not report.crashed_nodes and not report.app_finished:
            report.violations.append(
                "A4: application did not finish despite no node crash")
    if tracer is not None:
        from ..obs import to_jsonl

        report.span_dump = to_jsonl(tracer)
    return report


# ---------------------------------------------------------------------------
# content-addressed store chaos
# ---------------------------------------------------------------------------

@dataclass
class CasChaosReport:
    """One audited content-addressed-store chaos episode (see
    :func:`run_cas_chaos`)."""

    seed: int
    plan: List[Dict[str, Any]]
    trace: List[Tuple[float, str, Optional[str], Optional[str], Tuple[str, ...]]]
    fired: List[Tuple[float, str, str, Optional[str], Optional[str]]]
    #: (op kind, op_id, status) per driver operation, in order.
    ops: List[Tuple[str, int, str]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    crashed_nodes: List[str] = field(default_factory=list)
    app_finished: bool = False
    #: final store counters (:meth:`~repro.storage.cas.CasStore.stats`).
    store_stats: Dict[str, Any] = field(default_factory=dict)
    span_dump: Optional[str] = None


def run_cas_chaos(seed: int, n_nodes: int = 4, n_ops: int = 5,
                  rounds: int = 300, until: float = 300.0,
                  trace_spans: bool = False) -> CasChaosReport:
    """One content-addressed-store chaos episode; returns the audited
    report.

    The checksummed ping-pong pair (nonzero dirty rate, so generations
    differ) runs while the driver checkpoints both pods into the CAS at
    *fixed* per-pod paths — every op extends or replaces the same
    generation chain, exercising stage/publish/retire/release — with the
    delta filter and the zero-stall path mixed in at random, and a
    seeded fault plan firing at the checkpoint boundaries plus the CAS
    crossings (chunk write, index commit, tombstone GC).  Audited
    invariants:

    C1  A failed op leaves every surviving pod running (serial
        invariant I1 across the CAS write path).
    C2  A published recipe is never partial: whatever generation the
        store holds for a pod loads completely, and its chain
        reassembles.
    C3  **Generation integrity.**  The chain loaded back from the store
        is byte-identical to a committed prefix of the Agent's
        in-memory ground truth — an aborted op or replayed tombstone
        can never publish bytes nobody committed.
    C4  End-to-end checksums match whenever the application finished.
    C5  **No leaks, no dangles.**  After a final orphan sweep against
        the ledger's live ops, the store has no staged leftovers and
        :meth:`~repro.storage.cas.CasStore.audit` is clean: refcounts
        equal recipe occurrences, every chunk is referenced, and no
        published recipe references data that never hit the SAN.
    """
    from ..core.manager import Manager, PhaseTimeouts
    from ..core.pipeline import ImagePipeline
    from ..storage.cas import CasSink, CasStore

    cluster = Cluster.build(n_nodes, seed=seed)
    tracer = None
    if trace_spans:
        from ..obs import SpanTracer

        tracer = SpanTracer(cluster.engine).install(cluster)
    manager = Manager.deploy(cluster)
    plan = FaultPlan.random(seed, [n.name for n in cluster.nodes],
                            phases=CHECKPOINT_PHASES + CAS_PHASES)
    injector = FaultInjector(cluster, plan).install()
    engine = cluster.engine
    drv_rng = random.Random(seed ^ 0x0CA5CA50)
    timeouts = PhaseTimeouts(connect=2.0, meta=5.0, barrier=5.0, done=8.0,
                             flush=20.0, load=5.0, restart_done=15.0, drain=3.0)
    grace = timeouts.barrier + timeouts.done + 2.0

    srv_node, cli_node = cluster.node(1), cluster.node(2 % n_nodes)
    pod_srv = cluster.create_pod(srv_node, SRV_POD)
    pod_cli = cluster.create_pod(cli_node, CLI_POD)
    srv = srv_node.kernel.spawn(
        build_program("chaos.pp-server", port=9320, rounds=rounds,
                      dirty_rate=25_000_000), pod_id=SRV_POD)
    cli = cli_node.kernel.spawn(
        build_program("chaos.pp-client", server=pod_srv.vip, port=9320,
                      rounds=rounds, dirty_rate=25_000_000), pod_id=CLI_POD)

    report = CasChaosReport(seed=seed, plan=injector.plan.describe(),
                            trace=injector.trace, fired=injector.fired)
    store = CasStore.on(cluster.san)
    cas_path = {pod_id: f"/san/cas-{pod_id}.img"
                for pod_id in (SRV_POD, CLI_POD)}
    # original placement: a pod only ever leaves its home host through a
    # crash-triggered restart, so "still on its home host" certifies the
    # local agent witnessed the pod's entire checkpoint history
    origin = {SRV_POD: srv_node.name, CLI_POD: cli_node.name}

    def surviving_node(pod_id: str):
        for node in cluster.nodes:
            if not node.crashed and pod_id in node.kernel.pods:
                return node
        return None

    def check_resumed(label: str):
        for pod_id in (SRV_POD, CLI_POD):
            node = surviving_node(pod_id)
            if node is None:
                continue
            pod = node.kernel.pods[pod_id]
            if pod.suspended:
                report.violations.append(
                    f"C1 {label}: {pod_id} left suspended on {node.name}")
            if pod.vip in node.kernel.netstack.netfilter._blocked_ips:
                report.violations.append(
                    f"C1 {label}: {pod_id} vip still firewalled on {node.name}")

    def driver():
        for _ in range(n_ops):
            use_delta = drv_rng.random() < 0.5
            use_async = drv_rng.random() < 0.3
            targets = []
            for pod_id in (SRV_POD, CLI_POD):
                node = surviving_node(pod_id)
                if node is None:
                    continue
                targets.append((node.name, pod_id, f"cas:{cas_path[pod_id]}"))
            if len(targets) < 2:
                return
            res = yield from manager.checkpoint_task(
                targets, deadline=30.0, timeouts=timeouts,
                filters=[{"name": "delta"}] if use_delta else None,
                async_ckpt=use_async)
            report.ops.append(("checkpoint", res.op_id, res.status))
            if not res.ok:
                yield engine.sleep(grace)
                check_resumed(f"op{res.op_id}")
            yield engine.sleep(drv_rng.uniform(0.5, 2.0))

    engine.spawn(driver(), name="cas-chaos-driver")
    engine.run(until=until)

    report.crashed_nodes = [n.name for n in cluster.nodes if n.crashed]
    home = cluster.node(0)

    # ---- C2 + C3: published generations load and match committed bytes
    for pod_id, path in sorted(cas_path.items()):
        if store.recipes.get(path) is None:
            continue
        sink = CasSink(cluster.san, home.kernel.vfs, path)
        try:
            loaded = sink.load(pod_id)
        except Exception as err:  # noqa: BLE001 - any load failure is the violation
            report.violations.append(
                f"C2: partial generation visible at {path}: {err}")
            continue
        try:
            ImagePipeline.reassemble(list(loaded))
        except Exception as err:  # noqa: BLE001
            report.violations.append(
                f"C2: generation at {path} does not reassemble: {err}")
        node = surviving_node(pod_id)
        if node is None:
            continue
        truth = manager.agents[node.name].mem_sink.load(pod_id)
        if not truth:
            # this agent holds no committed history for the pod at all —
            # no ground truth to diff against
            continue
        if len(truth) < len(loaded):
            if node.name != origin[pod_id]:
                # the pod verifiably restarted here mid-run: this
                # agent's chain starts at the restore point, not at
                # generation zero — no full ground truth to diff against
                continue
            # on the never-crashed home host the in-memory chain commits
            # BEFORE the CAS flush, so a published chain longer than the
            # committed one is exactly the C3 shape: the store holds
            # generation entries nobody committed
            report.violations.append(
                f"C3: published chain at {path} has {len(loaded)} entries "
                f"but the home host committed only {len(truth)}")
            continue
        for i, (img, ref) in enumerate(zip(loaded, truth)):
            if (img.data != ref.data
                    or img.accounted_bytes != ref.accounted_bytes
                    or img.netstate_bytes != ref.netstate_bytes
                    or img.epoch != ref.epoch):
                report.violations.append(
                    f"C3: generation entry {i} at {path} differs from "
                    "the committed in-memory chain")
                break

    # ---- C4: end-to-end correctness when the run could complete ----
    if srv is not None and cli is not None:
        sums = final_sums(cluster)
        report.app_finished = None not in sums
        if report.app_finished and sums != expected_sums(rounds):
            report.violations.append(
                f"C4: checksum mismatch: {sums} != {expected_sums(rounds)}")
        if not report.crashed_nodes and not report.app_finished:
            report.violations.append(
                "C4: application did not finish despite no node crash")

    # ---- C5: orphan sweep, then the index must balance exactly ----
    from ..storage.ledger import TERMINAL_PHASES
    live = [op_id for op_id, op in manager.ledger.replay().items()
            if op.phase not in TERMINAL_PHASES]
    store.sweep_orphans(live)
    for path in sorted(store.pending):
        report.violations.append(f"C5: staged recipe leaked at {path}")
    for problem in store.audit():
        report.violations.append(f"C5: {problem}")
    report.store_stats = store.stats()
    if tracer is not None:
        from ..obs import to_jsonl

        report.span_dump = to_jsonl(tracer)
    return report
