"""Cluster construction.

One call builds the whole testbed: engine, fabric, shared virtual
address plane, SAN, and N blades.  Pods are created through the cluster
so virtual addresses are allocated consistently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import PodError
from ..obs.tracer import NULL_SPAN
from ..net.addr import real_ip, virtual_ip
from ..net.fabric import Fabric
from ..pod.pod import Pod
from ..pod.vnet import VNet
from ..sim.engine import Engine
from ..storage.san import SharedStorage
from ..storage.snapshot import SnapshotManager
from .node import Node, NodeSpec


class Cluster:
    """A set of simulated blades sharing a fabric, VNet and SAN."""

    def __init__(self, engine: Engine, fabric: Fabric, vnet: VNet,
                 san: SharedStorage, nodes: List[Node]) -> None:
        self.engine = engine
        self.fabric = fabric
        self.vnet = vnet
        self.san = san
        self.nodes = nodes
        self.snapshots = SnapshotManager()
        self._next_vip = 0
        #: optional fault injector (see :mod:`repro.cluster.faults`);
        #: protocol code announces phase boundaries through :meth:`trace`.
        self.injector = None
        #: optional span tracer (see :mod:`repro.obs.tracer`); protocol
        #: code opens spans through :meth:`span` / :meth:`span_at`.
        self.tracer = None
        #: optional metrics registry (see :mod:`repro.obs.metrics`);
        #: protocol code records through :meth:`count` / :meth:`observe`.
        self.metrics = None
        #: the *active* Manager (the newest deployed, un-crashed one);
        #: fault injection addresses ``crash_manager`` at it.
        self.manager = None

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n_nodes: int, ncpus: int = 1, seed: int = 0,
              spec: Optional[NodeSpec] = None,
              engine: Optional[Engine] = None) -> "Cluster":
        """Construct an ``n_nodes``-blade cluster (each with ``ncpus``)."""
        engine = engine if engine is not None else Engine(seed=seed)
        fabric = Fabric(engine)
        vnet = VNet()
        san = SharedStorage()
        nodes = []
        for i in range(n_nodes):
            node_spec = spec if spec is not None else NodeSpec(ncpus=ncpus)
            nodes.append(Node(engine, i, f"blade{i}", real_ip(i), fabric, vnet, san, node_spec))
        return cls(engine, fabric, vnet, san, nodes)

    # ------------------------------------------------------------------
    def trace(self, phase: str, node: Optional[str] = None,
              pod: Optional[str] = None):
        """Announce a protocol phase boundary (generator; ``yield from``).

        With no injector and no tracer installed this is free: no event
        is recorded, no simulated time passes, and the caller's timing is
        untouched — the fig6 latency figures are identical with both
        disabled.  With an injector, the crossing is traced and any
        scheduled fault for this boundary fires (possibly stalling the
        calling task); with a span tracer, the crossing lands in the
        trace as a zero-length mark (the injector records it itself so
        fired faults are attached).  Returns the injector's directives
        dict (empty without one).
        """
        if self.injector is None:
            if self.tracer is not None:
                self.tracer.instant(phase, node=node, pod=pod)
            return {}
        return (yield from self.injector.on_phase(phase, node=node, pod=pod))

    # ------------------------------------------------------------------
    # observability (see repro.obs): every helper no-ops when nothing is
    # installed, so instrumented call sites stay branch-free and free.
    # ------------------------------------------------------------------
    def span(self, name: str, node: Optional[str] = None,
             pod: Optional[str] = None, parent: Any = None,
             category: str = "phase", key: Any = None, **attrs: Any):
        """Open a span at the current simulated time (or a no-op)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.begin(name, node=node, pod=pod, parent=parent,
                                 category=category, key=key, **attrs)

    def span_at(self, name: str, t_start: float, t_end: float,
                node: Optional[str] = None, pod: Optional[str] = None,
                parent: Any = None, category: str = "stage", **attrs: Any):
        """Record a span with explicit times (modeled pipeline stages)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.add(name, t_start, t_end, node=node, pod=pod,
                               parent=parent, category=category, **attrs)

    def span_context(self, key: Any, **attrs: Any) -> None:
        """Bind ambient attrs onto a tracer key (or no-op).

        Spans later parented by ``key`` inherit ``attrs`` — this is how
        the Manager stamps its identity and driving span onto agent-side
        spans *without* riding the wire (message bytes are timing-bearing
        in this simulation, so span context must cost zero bytes).
        """
        if self.tracer is not None:
            self.tracer.set_context(key, **attrs)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a counter on the installed metrics registry, if any."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample on the metrics registry, if any."""
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    def gauge_set(self, name: str, value: float) -> None:
        """Set a gauge on the metrics registry, if any."""
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------
    def node(self, index: int) -> Node:
        """Blade by index."""
        return self.nodes[index]

    def node_by_name(self, name: str) -> Node:
        """Blade by hostname."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise PodError(f"no node named {name!r}")

    def create_pod(self, node: Node, pod_id: str, vip: Optional[str] = None) -> Pod:
        """Create a pod on ``node``, allocating a virtual address."""
        if vip is None:
            vip = virtual_ip(self._next_vip)
            self._next_vip += 1
        return Pod.create(node.kernel, pod_id, vip, self.vnet)

    def find_pod(self, pod_id: str) -> Pod:
        """Locate a pod wherever it currently lives."""
        for node in self.nodes:
            pod = node.kernel.pods.get(pod_id)
            if pod is not None:
                return pod
        raise PodError(f"no pod {pod_id!r} in the cluster")

    def pods(self) -> Dict[str, Pod]:
        """All pods by id."""
        out: Dict[str, Pod] = {}
        for node in self.nodes:
            out.update(node.kernel.pods)
        return out

    def node_of_pod(self, pod_id: str) -> Node:
        """The blade currently hosting ``pod_id``."""
        for node in self.nodes:
            if pod_id in node.kernel.pods:
                return node
        raise PodError(f"no pod {pod_id!r} in the cluster")
