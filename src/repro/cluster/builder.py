"""Cluster construction.

One call builds the whole testbed: engine, fabric, shared virtual
address plane, SAN, and N blades.  Pods are created through the cluster
so virtual addresses are allocated consistently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PodError
from ..net.addr import real_ip, virtual_ip
from ..net.fabric import Fabric
from ..pod.pod import Pod
from ..pod.vnet import VNet
from ..sim.engine import Engine
from ..storage.san import SharedStorage
from ..storage.snapshot import SnapshotManager
from .node import Node, NodeSpec


class Cluster:
    """A set of simulated blades sharing a fabric, VNet and SAN."""

    def __init__(self, engine: Engine, fabric: Fabric, vnet: VNet,
                 san: SharedStorage, nodes: List[Node]) -> None:
        self.engine = engine
        self.fabric = fabric
        self.vnet = vnet
        self.san = san
        self.nodes = nodes
        self.snapshots = SnapshotManager()
        self._next_vip = 0
        #: optional fault injector (see :mod:`repro.cluster.faults`);
        #: protocol code announces phase boundaries through :meth:`trace`.
        self.injector = None

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n_nodes: int, ncpus: int = 1, seed: int = 0,
              spec: Optional[NodeSpec] = None,
              engine: Optional[Engine] = None) -> "Cluster":
        """Construct an ``n_nodes``-blade cluster (each with ``ncpus``)."""
        engine = engine if engine is not None else Engine(seed=seed)
        fabric = Fabric(engine)
        vnet = VNet()
        san = SharedStorage()
        nodes = []
        for i in range(n_nodes):
            node_spec = spec if spec is not None else NodeSpec(ncpus=ncpus)
            nodes.append(Node(engine, i, f"blade{i}", real_ip(i), fabric, vnet, san, node_spec))
        return cls(engine, fabric, vnet, san, nodes)

    # ------------------------------------------------------------------
    def trace(self, phase: str, node: Optional[str] = None,
              pod: Optional[str] = None):
        """Announce a protocol phase boundary (generator; ``yield from``).

        With no injector installed this is free: no event is recorded, no
        simulated time passes, and the caller's timing is untouched — the
        fig6 latency figures are identical with injection disabled.  With
        an injector, the crossing is traced and any scheduled fault for
        this boundary fires (possibly stalling the calling task).
        Returns the injector's directives dict (empty without one).
        """
        if self.injector is None:
            return {}
        return (yield from self.injector.on_phase(phase, node=node, pod=pod))

    # ------------------------------------------------------------------
    def node(self, index: int) -> Node:
        """Blade by index."""
        return self.nodes[index]

    def node_by_name(self, name: str) -> Node:
        """Blade by hostname."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise PodError(f"no node named {name!r}")

    def create_pod(self, node: Node, pod_id: str, vip: Optional[str] = None) -> Pod:
        """Create a pod on ``node``, allocating a virtual address."""
        if vip is None:
            vip = virtual_ip(self._next_vip)
            self._next_vip += 1
        return Pod.create(node.kernel, pod_id, vip, self.vnet)

    def find_pod(self, pod_id: str) -> Pod:
        """Locate a pod wherever it currently lives."""
        for node in self.nodes:
            pod = node.kernel.pods.get(pod_id)
            if pod is not None:
                return pod
        raise PodError(f"no pod {pod_id!r} in the cluster")

    def pods(self) -> Dict[str, Pod]:
        """All pods by id."""
        out: Dict[str, Pod] = {}
        for node in self.nodes:
            out.update(node.kernel.pods)
        return out

    def node_of_pod(self, pod_id: str) -> Node:
        """The blade currently hosting ``pod_id``."""
        for node in self.nodes:
            if pod_id in node.kernel.pods:
                return node
        raise PodError(f"no pod {pod_id!r} in the cluster")
