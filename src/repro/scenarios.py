"""Scenario programs: small distributed workloads exercising specific
checkpoint-restart mechanisms.

These complement the full applications in :mod:`repro.apps`: each
scenario puts one mechanism under stress — urgent/OOB data in flight,
application-level timeouts, ring topologies, deep socket queues — and is
used by both the test suite and the ablation benchmarks.
"""

from __future__ import annotations

from typing import List

from .cluster.builder import Cluster
from .net.sockets import MSG_OOB
from .vos.process import Process
from .vos.program import build_program, imm, program

# ---------------------------------------------------------------------------
# urgent-data probe: exercises OOB capture (what peek-based capture loses)
# ---------------------------------------------------------------------------


@program("scenario.oob-receiver")
def _oob_receiver(b, *, port, pause=2.0):
    """Accept, read some data, pause (checkpoint window), then read the
    urgent byte and the rest of the stream."""
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.syscall("first", "recv", "cfd", imm(16), imm(0))
    b.syscall(None, "sleep", imm(pause))
    b.syscall("urgent", "recv", "cfd", imm(16), imm(MSG_OOB))
    b.syscall("rest", "recv", "cfd", imm(16), imm(0))
    b.halt(imm(0))


@program("scenario.oob-sender")
def _oob_sender(b, *, peer, port, linger=60.0):
    """Connect, send normal + urgent + normal data, then stay alive."""
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    b.syscall(None, "send", "fd", imm(b"normal-one"), imm(0))
    b.syscall(None, "send", "fd", imm(b"!"), imm(MSG_OOB))
    b.syscall(None, "send", "fd", imm(b"normal-two"), imm(0))
    b.syscall(None, "sleep", imm(linger))
    b.halt(imm(0))


def launch_oob_probe(cluster: Cluster, *, rx_node: int = 0, tx_node: int = 1,
                     port: int = 9300, name: str = "oob") -> List[Process]:
    """Start the urgent-data pair in two pods; returns [receiver, sender]."""
    p_rx = cluster.create_pod(cluster.node(rx_node), f"{name}-rx")
    cluster.create_pod(cluster.node(tx_node), f"{name}-tx")
    rx = cluster.node(rx_node).kernel.spawn(
        build_program("scenario.oob-receiver", port=port), pod_id=f"{name}-rx")
    tx = cluster.node(tx_node).kernel.spawn(
        build_program("scenario.oob-sender", peer=p_rx.vip, port=port),
        pod_id=f"{name}-tx")
    return [rx, tx]


# ---------------------------------------------------------------------------
# application-level timeout layer: exercises time virtualization
# ---------------------------------------------------------------------------


@program("scenario.heartbeat")
def _heartbeat(b, *, threshold, work=3.0):
    """Stamp the clock, work, then check staleness — the timeout pattern
    that misfires across a checkpoint→restart gap without virtualization."""
    b.syscall("stamp", "gettime")
    b.syscall(None, "sleep", imm(work))
    b.syscall("now", "gettime")
    b.op("elapsed", lambda now, stamp: now - stamp, "now", "stamp")
    b.op("expired", lambda e, t=threshold: e > t, "elapsed")
    b.halt(imm(0))


@program("scenario.timer-user")
def _timer_user(b, *, delay):
    """Arm an OS timer, nap, then wait for it (timer re-arming probe)."""
    b.syscall("tid", "settimer", imm(delay))
    b.syscall(None, "sleep", imm(1.0))
    b.syscall("fired", "waittimer", "tid")
    b.syscall("t", "gettime")
    b.halt(imm(0))


# ---------------------------------------------------------------------------
# token ring: exercises the two-thread connectivity recovery
# ---------------------------------------------------------------------------


@program("scenario.ring-node")
def _ring_node(b, *, my_port, next_vip, next_port, laps, starter, compute=2_000_000):
    """Accept from the previous node, connect to the next, pass a token.

    Each node performs exactly ``laps`` receptions; every reception is
    forwarded except the starter's last, which retires the token — so
    the ring drains cleanly with no EOF cascade.
    """
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "bind", "lfd", imm(("default", my_port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("ofd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "ofd", imm((next_vip, next_port)))
    b.syscall("conn", "accept", "lfd")
    b.op("ifd", lambda c: c[0], "conn")
    if starter:
        b.syscall(None, "send", "ofd", imm((0).to_bytes(8, "big")), imm(0))
    with b.for_range("t", imm(0), imm(laps)):
        b.syscall("tok", "recv", "ifd", imm(8), imm(0))
        b.compute(imm(compute))
        b.op("out", lambda tok: (int.from_bytes(tok, "big") + 1).to_bytes(8, "big"), "tok")
        if starter:
            b.op("fwd", lambda t, n=laps: t < n - 1, "t")
            with b.if_("fwd"):
                b.syscall(None, "send", "ofd", "out", imm(0))
        else:
            b.syscall(None, "send", "ofd", "out", imm(0))
    b.mov("tokens", imm(laps))
    if starter:
        b.op("final", lambda tok: int.from_bytes(tok, "big"), "tok")
    b.halt(imm(0))


def launch_ring(cluster: Cluster, k: int, *, laps: int = 40, base_port: int = 9500,
                compute: int = 2_000_000, name: str = "ring") -> List[Process]:
    """Start a K-pod token ring on nodes 0..k-1; returns the processes."""
    pods = [cluster.create_pod(cluster.node(i), f"{name}{i}") for i in range(k)]
    procs = []
    for i in range(k):
        nxt = pods[(i + 1) % k]
        prog = build_program(
            "scenario.ring-node",
            my_port=base_port + i,
            next_vip=nxt.vip,
            next_port=base_port + (i + 1) % k,
            laps=laps,
            starter=(i == 0),
            compute=compute,
        )
        procs.append(cluster.node(i).kernel.spawn(prog, pod_id=f"{name}{i}"))
    return procs


# ---------------------------------------------------------------------------
# deep queues: exercises send-queue capture and the redirect optimization
# ---------------------------------------------------------------------------


@program("scenario.queue-sender")
def _queue_sender(b, *, peer, port, chunks, chunk_bytes, compute_per_chunk=1_500_000):
    """Stream data at a slower receiver so queues stay deep.

    The sender paces itself (it has work of its own), so at any instant
    mid-run it holds a deep send queue and an open socket — the state the
    send-queue capture and the migration redirect optimization act on.
    """
    b.syscall("fd", "socket", imm("tcp"))
    b.syscall("rc", "connect", "fd", imm((peer, port)))
    with b.for_range("i", imm(0), imm(chunks)):
        b.op("msg", lambda i, n=chunk_bytes: bytes([i % 251]) * n, "i")
        b.syscall(None, "send", "fd", "msg", imm(0))
        b.compute(imm(compute_per_chunk))
    b.syscall(None, "close", "fd")
    b.halt(imm(0))


@program("scenario.queue-receiver")
def _queue_receiver(b, *, port, total_bytes, compute_per_read=3_000_000,
                    rcvbuf=32_768):
    """Read slowly through a small receive window, so the sender's send
    queue (not just the receive queue) backs up."""
    b.syscall("lfd", "socket", imm("tcp"))
    b.syscall(None, "setsockopt", "lfd", imm("SO_RCVBUF"), imm(rcvbuf))
    b.syscall(None, "bind", "lfd", imm(("default", port)))
    b.syscall(None, "listen", "lfd", imm(4))
    b.syscall("conn", "accept", "lfd")
    b.op("cfd", lambda c: c[0], "conn")
    b.mov("got", imm(0))
    b.op("more", lambda g, t=total_bytes: g < t, "got")
    with b.while_("more"):
        b.compute(imm(compute_per_read))
        b.syscall("m", "recv", "cfd", imm(4096), imm(0))
        b.op("got", lambda g, m: g + len(m), "got", "m")
        b.op("more", lambda g, m, t=total_bytes: len(m) > 0 and g < t, "got", "m")
    b.halt(imm(0))


def launch_queue_pair(cluster: Cluster, *, chunks: int = 60, chunk_bytes: int = 4096,
                      port: int = 9200, rx_node: int = 0, tx_node: int = 1,
                      name: str = "q") -> List[Process]:
    """Start the deep-queue pair; returns [receiver, sender]."""
    total = chunks * chunk_bytes
    p_rx = cluster.create_pod(cluster.node(rx_node), f"{name}-rx")
    cluster.create_pod(cluster.node(tx_node), f"{name}-tx")
    rx = cluster.node(rx_node).kernel.spawn(
        build_program("scenario.queue-receiver", port=port, total_bytes=total),
        pod_id=f"{name}-rx")
    tx = cluster.node(tx_node).kernel.spawn(
        build_program("scenario.queue-sender", peer=p_rx.vip, port=port,
                      chunks=chunks, chunk_bytes=chunk_bytes),
        pod_id=f"{name}-tx")
    return [rx, tx]
