"""Chrome-trace schema validation: ``python -m repro.obs.validate``.

Structural checks on an exported trace file (the CI job runs this on a
traced snapshot+restart and uploads the trace as an artifact):

* the document is a ``traceEvents`` object and every event carries the
  required keys for its ``ph`` type;
* timestamps are non-decreasing in stream order;
* duration events form matched, properly nested ``B``/``E`` pairs per
  track (a stack check, name-matched);
* every event's ``cat`` is a *known* span category — an unknown
  category fails validation (a silently-passing unknown means an
  instrumentation site and this schema have drifted apart);
* async ``b``/``e`` pairs match by id;
* optionally (``--checkpoint``), the checkpoint protocol phases the
  paper's Figure 6 decomposes — suspend, network block, netstate save,
  meta-data report, continue barrier, standalone save — all appear;
* optionally (``--fleet``), the PR 7 fleet campaign spans and trace
  points appear;
* ``--campaign`` instead validates an *assembled* campaign-trace JSONL
  artifact (see :mod:`repro.obs.assemble`): header schema, pre-order
  node ids, parent-before-child, time ordering, known kinds, and
  complete pod-unit coverage.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional

#: phase/window span names a traced coordinated checkpoint must contain.
CHECKPOINT_SPAN_NAMES = (
    "agent.phase.suspend",
    "agent.net_block",
    "agent.phase.netstate",
    "agent.phase.meta_report",
    "agent.phase.barrier",
    "agent.phase.standalone",
    "manager.checkpoint",
)

#: span/trace-point names a traced fleet campaign must contain.
FLEET_SPAN_NAMES = (
    "fleet.wave",
    "fleet.wave_start",
    "fleet.pod_start",
    "fleet.pod_done",
)

#: every span category an exporter may emit: the tracer's categories
#: plus the node kinds the campaign assembler synthesizes.
KNOWN_CATEGORIES = frozenset((
    "op", "phase", "stage", "window", "mark", "fault", "post",
    "campaign", "wave", "unit", "cas",
))

_REQUIRED_KEYS = ("ph", "pid", "tid", "name")


def validate_chrome(doc: Any, require: Optional[List[str]] = None) -> List[str]:
    """Validate a parsed Chrome trace document; returns problem strings."""
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    last_ts: Optional[float] = None
    stacks: Dict[Any, List[Dict[str, Any]]] = {}
    async_open: Dict[Any, str] = {}
    seen_names = set()
    for i, ev in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in ev:
                problems.append(f"event {i}: missing key {key!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} before previous {last_ts}")
        last_ts = ts
        cat = ev.get("cat")
        if cat is not None and cat not in KNOWN_CATEGORIES:
            problems.append(f"event {i}: unknown span category {cat!r}")
        seen_names.add(ev.get("name"))
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(ev)
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E {ev.get('name')!r} with no open B on track {track}")
            else:
                opener = stack.pop()
                if opener.get("name") != ev.get("name"):
                    problems.append(
                        f"event {i}: E {ev.get('name')!r} closes B {opener.get('name')!r} "
                        f"on track {track} (improper nesting)")
        elif ph == "b":
            key = (track[0], ev.get("id"))
            if key in async_open:
                problems.append(f"event {i}: async id {ev.get('id')} opened twice")
            async_open[key] = ev.get("name")
        elif ph == "e":
            key = (track[0], ev.get("id"))
            if async_open.pop(key, None) is None:
                problems.append(f"event {i}: async e id {ev.get('id')} never opened")
        elif ph == "X":
            if "dur" not in ev:
                problems.append(f"event {i}: X event without dur")
        elif ph == "i":
            pass
        else:
            problems.append(f"event {i}: unknown ph {ph!r}")
    for track, stack in sorted(stacks.items(), key=str):
        for ev in stack:
            problems.append(f"unclosed B {ev.get('name')!r} on track {track}")
    for (pid, span_id), name in sorted(async_open.items(), key=str):
        problems.append(f"unclosed async span {name!r} (id {span_id})")
    for name in require or []:
        if name not in seen_names:
            problems.append(f"required span {name!r} absent from trace")
    return problems


def validate_campaign(lines: Any) -> List[str]:
    """Validate an assembled campaign-trace JSONL artifact.

    ``lines`` is the artifact text or an iterable of parsed records.
    Checks the header, that node ids are pre-order (parent always
    precedes child), that every node's kind and times are sane, and
    that the header's coverage claims every pod-unit is in the tree.
    """
    if isinstance(lines, str):
        try:
            records = [json.loads(line) for line in lines.splitlines() if line]
        except ValueError as err:
            return [f"bad JSONL: {err}"]
    else:
        records = list(lines)
    if not records:
        return ["empty artifact"]
    problems: List[str] = []
    header = records[0]
    if header.get("rec") != "campaign-trace":
        return [f"first record is {header.get('rec')!r}, "
                "expected 'campaign-trace' header"]
    if header.get("schema") != 1:
        problems.append(f"unknown schema {header.get('schema')!r}")
    for key in ("cid", "kind", "status", "owners", "coverage", "nodes"):
        if key not in header:
            problems.append(f"header missing key {key!r}")
    coverage = header.get("coverage") or {}
    if coverage.get("missing"):
        problems.append("coverage incomplete: pod-units missing from tree: "
                        + ",".join(coverage["missing"]))
    nodes = records[1:]
    if header.get("nodes") is not None and header["nodes"] != len(nodes):
        problems.append(f"header claims {header['nodes']} nodes, "
                        f"artifact has {len(nodes)}")
    for i, node in enumerate(nodes):
        where = f"node {i}"
        if node.get("rec") != "node":
            problems.append(f"{where}: rec is {node.get('rec')!r}")
            continue
        for key in ("id", "kind", "name", "t0", "t1", "status", "src"):
            if key not in node:
                problems.append(f"{where}: missing key {key!r}")
        if node.get("id") != i:
            problems.append(f"{where}: id {node.get('id')!r} not pre-order")
        parent = node.get("parent")
        if i == 0:
            if parent is not None:
                problems.append(f"{where}: root has parent {parent!r}")
            if node.get("kind") != "campaign":
                problems.append(f"{where}: root kind {node.get('kind')!r}")
        elif not isinstance(parent, int) or not 0 <= parent < i:
            problems.append(f"{where}: parent {parent!r} does not precede it")
        kind = node.get("kind")
        if kind is not None and kind not in KNOWN_CATEGORIES:
            problems.append(f"{where}: unknown kind {kind!r}")
        t0, t1 = node.get("t0"), node.get("t1")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)) \
                and t1 < t0:
            problems.append(f"{where}: t1 {t1} before t0 {t0}")
    return problems


def validate_file(path: str, require: Optional[List[str]] = None,
                  campaign: bool = False) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        return [f"cannot load {path}: {err}"]
    if campaign:
        return validate_campaign(text)
    try:
        doc = json.loads(text)
    except ValueError as err:
        return [f"cannot load {path}: {err}"]
    return validate_chrome(doc, require=require)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="trace file to validate")
    parser.add_argument("--checkpoint", action="store_true",
                        help="additionally require the coordinated-checkpoint "
                             "protocol phases to be present")
    parser.add_argument("--fleet", action="store_true",
                        help="additionally require the fleet campaign spans "
                             "and trace points to be present")
    parser.add_argument("--campaign", action="store_true",
                        help="validate an assembled campaign-trace JSONL "
                             "artifact instead of a Chrome trace")
    args = parser.parse_args(argv)
    require: List[str] = []
    if args.checkpoint:
        require += list(CHECKPOINT_SPAN_NAMES)
    if args.fleet:
        require += list(FLEET_SPAN_NAMES)
    problems = validate_file(args.path, require=require or None,
                             campaign=args.campaign)
    if problems:
        for p in problems:
            print(f"INVALID: {p}")
        return 1
    with open(args.path, "r", encoding="utf-8") as fh:
        if args.campaign:
            n = sum(1 for line in fh if line.strip()) - 1
            what = "nodes"
        else:
            n = len(json.load(fh)["traceEvents"])
            what = "events"
    print(f"OK: {args.path} — {n} {what}, schema valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
