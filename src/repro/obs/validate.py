"""Chrome-trace schema validation: ``python -m repro.obs.validate``.

Structural checks on an exported trace file (the CI job runs this on a
traced snapshot+restart and uploads the trace as an artifact):

* the document is a ``traceEvents`` object and every event carries the
  required keys for its ``ph`` type;
* timestamps are non-decreasing in stream order;
* duration events form matched, properly nested ``B``/``E`` pairs per
  track (a stack check, name-matched);
* async ``b``/``e`` pairs match by id;
* optionally (``--checkpoint``), the checkpoint protocol phases the
  paper's Figure 6 decomposes — suspend, network block, netstate save,
  meta-data report, continue barrier, standalone save — all appear.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional

#: phase/window span names a traced coordinated checkpoint must contain.
CHECKPOINT_SPAN_NAMES = (
    "agent.phase.suspend",
    "agent.net_block",
    "agent.phase.netstate",
    "agent.phase.meta_report",
    "agent.phase.barrier",
    "agent.phase.standalone",
    "manager.checkpoint",
)

_REQUIRED_KEYS = ("ph", "pid", "tid", "name")


def validate_chrome(doc: Any, require: Optional[List[str]] = None) -> List[str]:
    """Validate a parsed Chrome trace document; returns problem strings."""
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    last_ts: Optional[float] = None
    stacks: Dict[Any, List[Dict[str, Any]]] = {}
    async_open: Dict[Any, str] = {}
    seen_names = set()
    for i, ev in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in ev:
                problems.append(f"event {i}: missing key {key!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} before previous {last_ts}")
        last_ts = ts
        seen_names.add(ev.get("name"))
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(ev)
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {i}: E {ev.get('name')!r} with no open B on track {track}")
            else:
                opener = stack.pop()
                if opener.get("name") != ev.get("name"):
                    problems.append(
                        f"event {i}: E {ev.get('name')!r} closes B {opener.get('name')!r} "
                        f"on track {track} (improper nesting)")
        elif ph == "b":
            key = (track[0], ev.get("id"))
            if key in async_open:
                problems.append(f"event {i}: async id {ev.get('id')} opened twice")
            async_open[key] = ev.get("name")
        elif ph == "e":
            key = (track[0], ev.get("id"))
            if async_open.pop(key, None) is None:
                problems.append(f"event {i}: async e id {ev.get('id')} never opened")
        elif ph == "X":
            if "dur" not in ev:
                problems.append(f"event {i}: X event without dur")
        elif ph == "i":
            pass
        else:
            problems.append(f"event {i}: unknown ph {ph!r}")
    for track, stack in sorted(stacks.items(), key=str):
        for ev in stack:
            problems.append(f"unclosed B {ev.get('name')!r} on track {track}")
    for (pid, span_id), name in sorted(async_open.items(), key=str):
        problems.append(f"unclosed async span {name!r} (id {span_id})")
    for name in require or []:
        if name not in seen_names:
            problems.append(f"required span {name!r} absent from trace")
    return problems


def validate_file(path: str, require: Optional[List[str]] = None) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        return [f"cannot load {path}: {err}"]
    return validate_chrome(doc, require=require)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="Chrome trace JSON file to validate")
    parser.add_argument("--checkpoint", action="store_true",
                        help="additionally require the coordinated-checkpoint "
                             "protocol phases to be present")
    args = parser.parse_args(argv)
    require = list(CHECKPOINT_SPAN_NAMES) if args.checkpoint else None
    problems = validate_file(args.path, require=require)
    if problems:
        for p in problems:
            print(f"INVALID: {p}")
        return 1
    with open(args.path, "r", encoding="utf-8") as fh:
        n = len(json.load(fh)["traceEvents"])
    print(f"OK: {args.path} — {n} events, schema valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
