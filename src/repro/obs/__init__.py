"""Observability: simulated-time span tracing, metrics, exporters.

The subsystem decomposes checkpoint/restart latency into the protocol
phases of the paper's Figure 6 — suspend, network block, netstate save,
meta-data report, the single continue barrier, parallel standalone save
— and makes the decomposition exportable (JSONL, Chrome ``trace_event``,
text tables) and assertable (determinism and reconciliation checks).

Everything runs on the simulated clock: recording is a pure append, so
an installed tracer perturbs nothing, and traces of the same seed are
byte-identical — the tracer doubles as a determinism oracle.
"""

from .assemble import (
    CampaignTrace,
    TraceNode,
    assemble_campaign,
    assemble_campaigns,
)
from .exporters import (
    dumps_chrome,
    export,
    lane_of,
    phase_summary,
    phase_timeline,
    to_chrome,
    to_jsonl,
)
from .metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .series import DEFAULT_WINDOW_S, SeriesBank
from .slo import (
    SloBudget,
    SloReport,
    SloVerdict,
    WallProfiler,
    audit_campaign,
)
from .tracer import (
    FAULT,
    MARK,
    NULL_SPAN,
    OP,
    PHASE,
    POST,
    SIM_TICK_S,
    STAGE,
    WINDOW,
    Span,
    SpanTracer,
    phase_sums,
    reconcile_op,
)
from .validate import (
    CHECKPOINT_SPAN_NAMES,
    FLEET_SPAN_NAMES,
    KNOWN_CATEGORIES,
    validate_campaign,
    validate_chrome,
    validate_file,
)

__all__ = [
    "CHECKPOINT_SPAN_NAMES", "CampaignTrace", "Counter", "DEFAULT_BOUNDS",
    "DEFAULT_WINDOW_S", "FAULT", "FLEET_SPAN_NAMES", "Gauge", "Histogram",
    "KNOWN_CATEGORIES", "MARK", "MetricsRegistry", "NULL_SPAN", "OP", "PHASE",
    "POST", "SIM_TICK_S", "STAGE", "SeriesBank", "SloBudget", "SloReport",
    "SloVerdict", "Span", "SpanTracer", "TraceNode", "WINDOW", "WallProfiler",
    "assemble_campaign", "assemble_campaigns", "audit_campaign",
    "dumps_chrome", "export", "lane_of", "percentile", "phase_summary",
    "phase_sums", "phase_timeline", "reconcile_op", "to_chrome", "to_jsonl",
    "validate_campaign", "validate_chrome", "validate_file",
]
