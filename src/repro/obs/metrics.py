"""Deterministic metrics registry: counters, gauges, histograms.

Instruments the protocol's operational behavior — retries, backoff
sleeps, barrier-wait time per node, bytes per pipeline stage, GC'd
partial images, fault activations — alongside the span tracer.  All
instruments are created on first use and render through
:func:`repro.metrics.print_table`, so the text form is stable across
runs of the same seed.

Histograms use *fixed* bucket bounds chosen at creation: no adaptive
resizing, no quantile sketches — bucket counts are exactly reproducible,
which keeps the registry usable inside determinism tests.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..metrics import print_table

#: default histogram bounds: protocol waits span sub-millisecond socket
#: operations to minute-scale deadline expiries.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Interpolation-free by design: the result is always a member of
    ``values``, so fleet reports (p50/p99 per-pod downtime) stay exactly
    reproducible across runs of the same seed.  Empty input yields 0.0.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0.0:
        return ordered[0]
    # nearest-rank: smallest index whose cumulative share covers q
    rank = -(-int(q * len(ordered)) // 100) if q < 100.0 else len(ordered)
    rank = max(1, min(len(ordered), rank))
    return ordered[rank - 1]


class Counter:
    """Monotonically increasing count (events, bytes)."""

    __slots__ = ("name", "value", "bank")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        #: optional SeriesBank receiving per-window samples (see series.py).
        self.bank = None

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        if self.bank is not None:
            self.bank.record_counter(self.name, amount)


class Gauge:
    """Last-written value (queue depths, current epoch)."""

    __slots__ = ("name", "value", "bank")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.bank = None

    def set(self, value: float) -> None:
        self.value = value
        if self.bank is not None:
            self.bank.record_gauge(self.name, value)


class Histogram:
    """Fixed-bound bucket histogram.

    ``bounds`` are upper bucket edges (inclusive); one overflow bucket
    catches everything above the last edge.  Bounds are frozen at
    creation for determinism.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "bank")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.bank = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.bank is not None:
            self.bank.record_hist(self.name, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[str, int]]:
        """(upper-edge label, count) pairs, overflow labelled ``+inf``."""
        labels = [f"≤{b:g}" for b in self.bounds] + ["+inf"]
        return list(zip(labels, self.bucket_counts))


class MetricsRegistry:
    """Get-or-create instrument store, installable on a cluster."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: optional SeriesBank; see :meth:`enable_series`.
        self.series = None

    def install(self, cluster) -> "MetricsRegistry":
        cluster.metrics = self
        return self

    def enable_series(self, engine, window_s: Optional[float] = None):
        """Attach a windowed :class:`~repro.obs.series.SeriesBank`.

        Existing and future instruments start streaming per-window
        samples into it (counter increments, gauge sets, histogram
        observations) keyed by the engine's simulated clock.  Returns
        the bank.
        """
        from .series import DEFAULT_WINDOW_S, SeriesBank
        self.series = SeriesBank(
            engine, DEFAULT_WINDOW_S if window_s is None else window_s)
        for store in (self.counters, self.gauges, self.histograms):
            for inst in store.values():
                inst.bank = self.series
        return self.series

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
            inst.bank = self.series
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
            inst.bank = self.series
        return inst

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_BOUNDS)
            inst.bank = self.series
        return inst

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict dump (sorted by instrument name)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"count": h.count, "total": round(h.total, 9),
                    "buckets": h.buckets()}
                for n, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Print the registry as fixed-width tables; returns the text."""
        parts: List[str] = []
        scalar_rows = [(name, c.value) for name, c in sorted(self.counters.items())]
        scalar_rows += [(name, f"{g.value:g}") for name, g in sorted(self.gauges.items())]
        if scalar_rows:
            parts.append(print_table("metrics — counters & gauges",
                                     ("name", "value"), scalar_rows))
        hist_rows = []
        for name, h in sorted(self.histograms.items()):
            occupied = " ".join(f"{label}:{count}" for label, count in h.buckets()
                                if count)
            hist_rows.append((name, h.count, f"{h.total:.6f}",
                              f"{h.mean:.6f}", occupied or "-"))
        if hist_rows:
            parts.append(print_table(
                "metrics — histograms [s]",
                ("name", "count", "sum", "mean", "buckets"), hist_rows))
        return "\n".join(parts)
