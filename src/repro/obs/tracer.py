"""Span tracer driven by the simulated clock.

A :class:`SpanTracer` records nested spans (operation → node → pod →
phase) against the *simulated* time of the cluster's
:class:`~repro.sim.engine.Engine`.  Opening or closing a span is a pure
bookkeeping append — it schedules no events and advances no clock — so
an installed tracer never perturbs the simulation: a traced run and an
untraced run of the same seed produce identical latencies, and two
traced runs of the same seed produce byte-identical exports.  That
second property makes the tracer double as a determinism oracle for the
chaos harness.

Span categories:

``op``
    One coordinated operation as the Manager sees it (checkpoint,
    restart, recover).  Keyed by ``("op", op_id)`` so Agent-side spans
    on other nodes can attach themselves as children.
``phase``
    One protocol phase.  Phase spans of one actor (one manager→pod
    lane, or one node/pod lane) are contiguous and disjoint, so their
    durations sum to that actor's share of the operation latency — the
    reconciliation the exporters and tests check.
``stage``
    A pipeline stage (serialize / filter / write) nested inside a phase.
``window``
    A state interval that overlaps phases (the netfilter block window).
``mark`` / ``fault``
    Zero-length instants: protocol trace-point crossings and fault
    injector activations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: span categories (see module docstring).
OP = "op"
PHASE = "phase"
STAGE = "stage"
WINDOW = "window"
MARK = "mark"
FAULT = "fault"
POST = "post"

from ..sim.clock import TICK

#: smallest distinguishable unit of exported simulated time: one
#: microsecond (Chrome trace ``ts`` resolution).  Reconciliation checks
#: allow a ±1 tick slack for float rounding.
SIM_TICK_S = TICK

#: decimal places kept on exported timestamps (sub-tick noise removed so
#: exports are stable against float formatting).
_TIME_DECIMALS = 9


class Span:
    """One recorded interval (or instant) of simulated time."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "t_start", "t_end",
                 "node", "pod", "category", "status", "attrs",
                 "pending_status", "pending_attrs")

    def __init__(self, tracer: "SpanTracer", span_id: int, name: str,
                 t_start: float, parent_id: Optional[int] = None,
                 node: Optional[str] = None, pod: Optional[str] = None,
                 category: str = PHASE,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.node = node
        self.pod = pod
        self.category = category
        self.status = "ok"
        self.attrs: Dict[str, Any] = attrs or {}
        self.pending_status: Optional[str] = None
        self.pending_attrs: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def end(self, status: Optional[str] = None, **attrs: Any) -> "Span":
        """Close the span at the current simulated time (idempotent)."""
        if self.t_end is None:
            self.t_end = self.tracer.now
        if status is not None:
            self.status = status
        if attrs:
            self.attrs.update(attrs)
        return self

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes without closing the span."""
        self.attrs.update(attrs)
        return self

    def finalize_with(self, status: str, **attrs: Any) -> "Span":
        """Register the terminal status/attrs a later sweep must apply.

        A halting campaign cannot ``end()`` spans owned by the tasks it
        is about to abandon — they may still be running and will never
        resume to close themselves.  Registering the outcome here makes
        :meth:`SpanTracer.close_open` close the span with *this* status
        and these attrs instead of the generic ``"unclosed"``, so the
        dump records *why* the span never finished (e.g. ``"halted"``
        when the failure threshold tripped mid-wave).  On an
        already-closed span this degrades to an attribute update.
        """
        if self.t_end is not None:
            self.status = status
            self.attrs.update(attrs)
            return self
        self.pending_status = status
        if attrs:
            merged = dict(self.pending_attrs or {})
            merged.update(attrs)
            self.pending_attrs = merged
        return self

    @property
    def open(self) -> bool:
        return self.t_end is None

    @property
    def duration(self) -> float:
        return (self.t_end if self.t_end is not None else self.t_start) - self.t_start

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (exporters serialize this)."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": round(self.t_start, _TIME_DECIMALS),
            "t1": None if self.t_end is None else round(self.t_end, _TIME_DECIMALS),
            "node": self.node,
            "pod": self.pod,
            "cat": self.category,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.span_id}, {self.name!r}, {self.t_start:.6f}"
                f"→{self.t_end if self.t_end is not None else '…'})")


class _NullSpan:
    """Inert stand-in returned when no tracer is installed.

    Every call site writes ``sp = cluster.span(...); ...; sp.end()``
    unconditionally; with no tracer the whole exchange is two attribute
    lookups and costs nothing — the zero-overhead property the chaos
    harness asserts.
    """

    __slots__ = ()
    span_id = None
    parent_id = None
    duration = 0.0
    open = False

    def end(self, status: Optional[str] = None, **attrs: Any) -> "_NullSpan":
        return self

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def finalize_with(self, status: str, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

#: anything :meth:`SpanTracer.begin` accepts as a parent.
ParentRef = Any


class SpanTracer:
    """Records spans against an engine's simulated clock.

    Install on a cluster with :meth:`install`; protocol code reaches it
    through :meth:`repro.cluster.builder.Cluster.span` (which degrades
    to :data:`NULL_SPAN` when no tracer is present).
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.spans: List[Span] = []
        self._next_id = 1
        self._keys: Dict[Tuple[Any, ...], Span] = {}
        #: ambient attrs stamped onto every span parented by a key — the
        #: receiving side of span context riding the wire (an Agent binds
        #: ``mspan`` = the Manager incarnation's op-span id, and every
        #: Agent-side span under that op inherits it).
        self._contexts: Dict[Tuple[Any, ...], Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.engine.now

    def install(self, cluster) -> "SpanTracer":
        """Attach to ``cluster`` so instrumentation points reach us."""
        cluster.tracer = self
        return self

    # ------------------------------------------------------------------
    def _resolve_parent(self, parent: ParentRef) -> Optional[int]:
        if parent is None or parent is NULL_SPAN:
            return None
        if isinstance(parent, Span):
            return parent.span_id
        if isinstance(parent, tuple):  # a key registered via begin(key=...)
            found = self._keys.get(parent)
            return found.span_id if found is not None else None
        return None

    def _stamp(self, parent: ParentRef, attrs: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp key context onto a key-parented span's attrs.

        A span parented by a tuple key like ``("op", 7)`` inherits that
        key as an attr (``op=7``) plus any ambient context bound to the
        key via :meth:`set_context` — which is what lets the campaign
        assembler join spans to ledger records across dumps without
        every call site threading ids through by hand.  Explicit attrs
        always win.
        """
        if isinstance(parent, tuple) and len(parent) == 2:
            attrs.setdefault(str(parent[0]), parent[1])
            for k, v in self._contexts.get(parent, {}).items():
                attrs.setdefault(k, v)
        return attrs

    def set_context(self, key: Tuple[Any, ...], **attrs: Any) -> None:
        """Bind ambient attrs to ``key``: every later span parented by
        the key inherits them (see :meth:`_stamp`)."""
        self._contexts.setdefault(key, {}).update(attrs)

    def begin(self, name: str, node: Optional[str] = None,
              pod: Optional[str] = None, parent: ParentRef = None,
              category: str = PHASE, key: Optional[Tuple[Any, ...]] = None,
              **attrs: Any) -> Span:
        """Open a span at the current simulated time."""
        attrs = self._stamp(parent, dict(attrs))
        span = Span(self, self._next_id, name, self.now,
                    parent_id=self._resolve_parent(parent),
                    node=node, pod=pod, category=category,
                    attrs=attrs or None)
        self._next_id += 1
        self.spans.append(span)
        if key is not None:
            self._keys[key] = span
        return span

    def add(self, name: str, t_start: float, t_end: float,
            node: Optional[str] = None, pod: Optional[str] = None,
            parent: ParentRef = None, category: str = STAGE,
            **attrs: Any) -> Span:
        """Record a span with explicit start/end times (modeled stages:
        the caller slept once for several stages and subdivides here)."""
        attrs = self._stamp(parent, dict(attrs))
        span = Span(self, self._next_id, name, t_start,
                    parent_id=self._resolve_parent(parent),
                    node=node, pod=pod, category=category,
                    attrs=attrs or None)
        self._next_id += 1
        span.t_end = t_end
        self.spans.append(span)
        return span

    def instant(self, name: str, node: Optional[str] = None,
                pod: Optional[str] = None, parent: ParentRef = None,
                category: str = MARK, **attrs: Any) -> Span:
        """Record a zero-length mark at the current simulated time."""
        return self.add(name, self.now, self.now, node=node, pod=pod,
                        parent=parent, category=category, **attrs)

    # ------------------------------------------------------------------
    def find(self, key: Tuple[Any, ...]) -> Optional[Span]:
        """Span registered under ``key`` (e.g. ``("op", op_id)``)."""
        return self._keys.get(key)

    def close_open(self, status: str = "unclosed") -> int:
        """Close every still-open span at the current time.

        A cancelled protocol task never resumes to call ``end()``; the
        exporters call this first so the dump has no dangling spans.
        Spans that registered a terminal outcome via
        :meth:`Span.finalize_with` close with *that* status and attrs
        instead of the blanket default.  Returns how many spans were
        closed.
        """
        n = 0
        for span in self.spans:
            if span.t_end is None:
                span.end(status=span.pending_status or status,
                         **(span.pending_attrs or {}))
                n += 1
        return n

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]


# ---------------------------------------------------------------------------
# reconciliation: phase spans must account for the reported latency
# ---------------------------------------------------------------------------


def phase_sums(tracer: SpanTracer, op_span: Span) -> Dict[Tuple[str, Optional[str]], float]:
    """Per-lane sum of ``phase`` durations under one operation span.

    Lanes are ``(actor, pod)`` where actor is ``"manager"`` for
    Manager-side phases and the node name for Agent-side phases.  Within
    a lane, phase spans are contiguous by construction, so the sum is
    that lane's wall-clock share of the operation.
    """
    sums: Dict[Tuple[str, Optional[str]], float] = {}
    for span in tracer.children_of(op_span):
        if span.category != PHASE:
            continue
        actor = "manager" if span.name.startswith("manager.") else (span.node or "?")
        lane = (actor, span.pod)
        sums[lane] = sums.get(lane, 0.0) + span.duration
    return sums


def reconcile_op(tracer: SpanTracer, op_span: Span,
                 tolerance: float = SIM_TICK_S) -> List[str]:
    """Check one operation's phase accounting; returns problem strings.

    The Manager measures the operation as invocation → last pod done;
    each manager lane covers invocation → that pod's done, so the *max*
    manager-lane sum must equal the span's duration to within one sim
    tick.  (Agent lanes start later — at command receipt — and are
    reconciled against the Agent's own ``t_local`` by the caller, which
    has the stats message.)
    """
    problems: List[str] = []
    lanes = phase_sums(tracer, op_span)
    mgr = [total for (actor, _pod), total in lanes.items() if actor == "manager"]
    if not mgr:
        return [f"op span {op_span.span_id} ({op_span.name}) has no manager phase spans"]
    measured = op_span.attrs.get("duration_s", op_span.duration)
    if abs(max(mgr) - measured) > tolerance:
        problems.append(
            f"{op_span.name} op {op_span.attrs.get('op')}: manager phase sum "
            f"{max(mgr):.9f}s != reported latency {measured:.9f}s")
    return problems
