"""Trace exporters: deterministic JSONL, Chrome ``trace_event``, text.

Three consumers, three formats:

* :func:`to_jsonl` — one JSON object per span, in span-id order, keys
  sorted.  Byte-identical across runs of the same seed; the determinism
  oracle the chaos tests diff.
* :func:`to_chrome` / :func:`dumps_chrome` — the Chrome ``trace_event``
  JSON loadable in ``chrome://tracing`` / Perfetto.  One track per
  protocol actor: the Manager's op lane, one ``manager→pod`` lane per
  target, and one ``node/pod`` lane per Agent — with the paper's
  evaluation layout (one pod per node) that is exactly one track per
  node.  Phase spans become matched ``B``/``E`` pairs, overlapping
  windows become async ``b``/``e`` pairs, trace-point crossings and
  fault activations become instants.
* :func:`phase_timeline` — a fixed-width text table of the protocol
  phases (via :func:`repro.metrics.print_table`).

Simulated seconds are exported as Chrome microsecond timestamps, so one
``ts`` unit is one sim tick (:data:`repro.obs.tracer.SIM_TICK_S`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..metrics import print_table
from ..sim.clock import to_ticks
from .tracer import FAULT, MARK, OP, PHASE, POST, STAGE, WINDOW, Span, SpanTracer


def to_jsonl(tracer: SpanTracer) -> str:
    """All spans, one JSON object per line, deterministically ordered."""
    tracer.close_open()
    lines = [json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
             for span in sorted(tracer.spans, key=lambda s: s.span_id)]
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

#: Chrome pid used for the whole simulated cluster.
TRACE_PID = 1


def lane_of(span: Span) -> str:
    """The display track a span belongs to."""
    if span.name.startswith("manager.") or span.node is None:
        if span.category == OP or span.pod is None:
            return "manager"
        return f"manager→{span.pod}"
    if span.pod is None:
        return span.node
    return f"{span.node}/{span.pod}"


def _lane_order(tracer: SpanTracer) -> Dict[str, int]:
    """lane → tid, Manager lanes first, then node lanes by first use."""
    lanes: List[str] = []
    for span in tracer.spans:
        lane = lane_of(span)
        if lane not in lanes:
            lanes.append(lane)
    ordered = (["manager"] if "manager" in lanes else []) \
        + sorted(l for l in lanes if l.startswith("manager→")) \
        + [l for l in lanes if l != "manager" and not l.startswith("manager→")]
    return {lane: tid for tid, lane in enumerate(ordered)}


def _args_of(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {"span": span.span_id, "status": span.status}
    if span.parent_id is not None:
        args["parent"] = span.parent_id
    if span.pod is not None:
        args["pod"] = span.pod
    args.update(span.attrs)
    return args


def to_chrome(tracer: SpanTracer) -> Dict[str, Any]:
    """Chrome ``trace_event`` document (plain dict, ready to serialize)."""
    tracer.close_open()
    tids = _lane_order(tracer)
    events: List[Tuple[Tuple[float, int, int, float], Dict[str, Any]]] = []

    us = to_ticks

    for span in tracer.spans:
        tid = tids[lane_of(span)]
        base = {"pid": TRACE_PID, "tid": tid, "name": span.name,
                "cat": span.category, "args": _args_of(span)}
        t0, t1 = span.t_start, span.t_end if span.t_end is not None else span.t_start
        if span.category in (MARK, FAULT):
            events.append(((t0, tid, 2, 0.0),
                           dict(base, ph="i", ts=us(t0), s="t")))
        elif span.category == WINDOW:
            # overlaps phase spans on the same track: async pair, which
            # trace viewers render on their own sub-row
            events.append(((t0, tid, 2, 0.0),
                           dict(base, ph="b", ts=us(t0), id=span.span_id)))
            events.append(((t1, tid, 2, 0.0),
                           dict(base, ph="e", ts=us(t1), id=span.span_id)))
        elif t1 <= t0:
            # zero-duration slice: a complete event needs no E partner
            events.append(((t0, tid, 2, 0.0),
                           dict(base, ph="X", ts=us(t0), dur=0.0)))
        else:
            # duration slice.  Sort keys keep per-track nesting valid at
            # equal timestamps: E before B (priority 0 < 1); among
            # same-time B's the longer span (the parent) first; among
            # same-time E's the later-started span (the child) first.
            events.append(((t0, tid, 1, -t1),
                           dict(base, ph="B", ts=us(t0))))
            events.append(((t1, tid, 0, -t0),
                           dict(base, ph="E", ts=us(t1))))

    events.sort(key=lambda pair: pair[0])
    out: List[Dict[str, Any]] = []
    out.append({"ph": "M", "pid": TRACE_PID, "tid": 0, "ts": 0,
                "name": "process_name", "args": {"name": "zapc cluster (simulated)"}})
    for lane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({"ph": "M", "pid": TRACE_PID, "tid": tid, "ts": 0,
                    "name": "thread_name", "args": {"name": lane}})
    out.extend(ev for _key, ev in events)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def dumps_chrome(tracer: SpanTracer) -> str:
    """Serialized Chrome trace, deterministic byte-for-byte."""
    return json.dumps(to_chrome(tracer), sort_keys=True, separators=(",", ":"))


def export(tracer: SpanTracer, path: str, fmt: str = "chrome") -> None:
    """Write the trace to a real file in the requested format."""
    if fmt == "jsonl":
        text = to_jsonl(tracer)
    elif fmt == "chrome":
        text = dumps_chrome(tracer)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


# ---------------------------------------------------------------------------
# text timeline
# ---------------------------------------------------------------------------


def phase_timeline(tracer: SpanTracer, include_stages: bool = False) -> str:
    """Protocol phases as a fixed-width table; returns the text."""
    tracer.close_open()
    wanted = {OP, PHASE, WINDOW, POST} | ({STAGE} if include_stages else set())
    rows = []
    for span in sorted(tracer.spans, key=lambda s: (s.t_start, s.span_id)):
        if span.category not in wanted:
            continue
        rows.append((f"{span.t_start * 1e3:10.3f}",
                     f"{span.t_end * 1e3:10.3f}",
                     f"{span.duration * 1e3:9.3f}",
                     lane_of(span), span.name, span.status))
    return print_table(
        "phase timeline [ms, simulated]",
        ("start", "end", "duration", "track", "phase", "status"), rows)


def phase_summary(tracer: SpanTracer) -> str:
    """Mean/total duration per phase name; returns the table text."""
    tracer.close_open()
    totals: Dict[str, Tuple[int, float]] = {}
    for span in tracer.spans:
        if span.category not in (PHASE, STAGE, WINDOW):
            continue
        count, total = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, total + span.duration)
    rows = [(name, count, f"{total * 1e3:9.3f}", f"{total / count * 1e3:9.3f}")
            for name, (count, total) in sorted(totals.items())]
    return print_table("phase summary [ms, simulated]",
                       ("phase", "count", "total", "mean"), rows)
