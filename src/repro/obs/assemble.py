"""Failover-stitched campaign traces: one causal tree per campaign.

A fleet campaign that survives Manager failover leaves its story in two
places, neither complete on its own.  The *op ledger* records every
durable fact — the wave plan, each pod's outcome, every op's phase
crossings, who owned what and when — but no sub-record timing.  Each
*span dump* records fine-grained timing — phases, stages, net-block
windows — but only what one tracer saw, and a crashed incarnation's
spans end at ``close_open`` time with no terminal attrs.

The assembler joins the two: ledger records give the skeleton
(campaign → wave → pod-unit → op) and provenance (owners, claims,
adopted moves); span dumps flesh each op out with its phase tree.  Spans
join to the skeleton through the ``op`` / ``campaign`` attrs that
:meth:`~repro.obs.tracer.SpanTracer.begin` stamps onto every key-parented
span, so a span from *any* incarnation's dump lands under the right op —
including ops adopted after takeover, whose pod record was written by a
different Manager than the one that ran them.

Everything here is a pure function of its inputs (record list + dumps),
so the exported artifact is byte-identical across same-seed runs — the
assembled trace extends the chaos determinism oracle to fleet scale.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage.ledger import (CAMPAIGN_TERMINAL_PHASES, LedgerCampaign,
                              fold_campaigns, fold_ops)
from .tracer import _TIME_DECIMALS

#: schema version stamped on the assembled-trace JSONL header.
CAMPAIGN_TRACE_SCHEMA = 1

#: node kinds the assembler synthesizes from ledger records; span-derived
#: nodes keep their span category (op/phase/stage/window/post/mark/fault).
SYNTH_KINDS = ("campaign", "wave", "unit", "op")

#: unit statuses the assembler emits beyond the ledger's ok/failed.
UNIT_UNRECORDED = "unrecorded"


def _r(t: Optional[float]) -> Optional[float]:
    return None if t is None else round(float(t), _TIME_DECIMALS)


@dataclass
class TraceNode:
    """One node of an assembled campaign tree."""

    kind: str
    name: str
    t0: float = 0.0
    t1: float = 0.0
    status: str = "ok"
    node: Optional[str] = None
    pod: Optional[str] = None
    #: provenance: ``"ledger"`` for synthesized nodes, ``"span:<dump>"``
    #: for nodes lifted from dump ``<dump>``'s span list.
    src: str = "ledger"
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["TraceNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def walk(self) -> Iterable["TraceNode"]:
        """Depth-first pre-order over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def sort(self) -> None:
        """Deterministic child order: time, then provenance, then name."""
        self.children.sort(key=lambda n: (n.t0, n.src, n.name, n.pod or ""))
        for child in self.children:
            child.sort()


class _Dump:
    """One parsed span dump with parent/child indexes."""

    def __init__(self, index: int, spans: List[Dict[str, Any]]) -> None:
        self.index = index
        self.spans = spans
        self.kids: Dict[int, List[Dict[str, Any]]] = {}
        for s in spans:
            if s.get("parent") is not None:
                self.kids.setdefault(s["parent"], []).append(s)
        for v in self.kids.values():
            v.sort(key=lambda s: s["span"])


def _parse_dump(index: int, dump: Any) -> _Dump:
    if hasattr(dump, "spans"):  # a live SpanTracer
        spans = [s.to_dict() for s in dump.spans]
    elif isinstance(dump, str):
        spans = [json.loads(line) for line in dump.splitlines() if line]
    else:
        spans = [dict(s) for s in dump]
    return _Dump(index, spans)


def _node_from_span(dump: _Dump, s: Dict[str, Any],
                    skip: Tuple[str, ...] = ()) -> TraceNode:
    """Lift one span (and its in-dump descendants) into the tree."""
    t0 = float(s["t0"])
    t1 = t0 if s.get("t1") is None else float(s["t1"])
    node = TraceNode(kind=s.get("cat", "phase"), name=s["name"],
                     t0=t0, t1=t1, status=s.get("status", "ok"),
                     node=s.get("node"), pod=s.get("pod"),
                     src=f"span:{dump.index}", attrs=dict(s.get("attrs") or {}))
    for child in dump.kids.get(s["span"], []):
        if child["name"] in skip:
            continue
        node.children.append(_node_from_span(dump, child, skip=skip))
    return node


@dataclass
class CampaignTrace:
    """One campaign's assembled causal tree plus its coverage ledger."""

    cid: int
    kind: str
    status: str
    owners: List[str]
    root: TraceNode
    policy: Dict[str, Any] = field(default_factory=dict)
    #: pods the ledger knows about (planned or recorded) that have a
    #: unit node in the tree / are missing from it.
    pods_in_tree: List[str] = field(default_factory=list)
    pods_missing: List[str] = field(default_factory=list)
    #: pods whose unit record carries the adopted-after-takeover flag.
    adopted: List[str] = field(default_factory=list)
    #: ledger op ids attached under some unit / left unattached.
    ops_in_tree: List[int] = field(default_factory=list)
    ops_unattached: List[int] = field(default_factory=list)

    @property
    def t0(self) -> float:
        return self.root.t0

    @property
    def t1(self) -> float:
        return self.root.t1

    def nodes(self) -> List[TraceNode]:
        return list(self.root.walk())

    def units(self) -> List[TraceNode]:
        return [n for n in self.root.walk() if n.kind == "unit"]

    def coverage(self) -> Dict[str, Any]:
        """Does the tree account for every pod-unit in the ledger?"""
        return {
            "units": len(self.pods_in_tree) + len(self.pods_missing),
            "in_tree": len(self.pods_in_tree),
            "missing": list(self.pods_missing),
            "adopted": list(self.adopted),
            "ops": len(self.ops_in_tree),
            "ops_unattached": list(self.ops_unattached),
            "complete": not self.pods_missing,
        }

    # -- exports ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSONL artifact: a header record then one record per node,
        depth-first, ids in pre-order (parent always precedes child).
        Byte-identical for identical inputs."""
        header = {
            "rec": "campaign-trace", "schema": CAMPAIGN_TRACE_SCHEMA,
            "cid": self.cid, "kind": self.kind, "status": self.status,
            "owners": self.owners, "t0": _r(self.root.t0),
            "t1": _r(self.root.t1), "nodes": sum(1 for _ in self.root.walk()),
            "coverage": self.coverage(),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        ids: Dict[int, int] = {}
        for i, node in enumerate(self.root.walk()):
            ids[id(node)] = i
            rec = {
                "rec": "node", "id": i,
                "parent": None if i == 0 else ids[id(node._parent)],  # type: ignore[attr-defined]
                "kind": node.kind, "name": node.name,
                "t0": _r(node.t0), "t1": _r(node.t1),
                "status": node.status, "node": node.node, "pod": node.pod,
                "src": node.src, "attrs": node.attrs,
            }
            lines.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` form of the assembled tree.

        Every interval renders as an *async* ``b``/``e`` pair (unique id
        per node) so overlapping structure — waves without a barrier,
        an unclosed crashed-incarnation span overlapping its successor —
        never violates the synchronous-stack rules that ``B``/``E``
        events carry.  Lanes: campaign+waves on one track, one track per
        pod.
        """
        pid = 1
        lanes: Dict[str, int] = {"campaign": 0}
        for unit in self.units():
            lane = unit.pod or "?"
            if lane not in lanes:
                lanes[lane] = len(lanes)
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": f"campaign {self.cid} (assembled)"}},
        ]
        for lane, tid in lanes.items():
            events.append({"ph": "M", "pid": pid, "tid": tid,
                           "name": "thread_name", "args": {"name": lane}})
        meta_n = len(events)

        def lane_of(node: TraceNode, inherited: int) -> int:
            if node.kind in ("campaign", "wave"):
                return 0
            if node.kind == "unit":
                return lanes.get(node.pod or "?", inherited)
            return inherited

        body: List[Dict[str, Any]] = []
        ids: Dict[int, int] = {}
        for i, node in enumerate(self.root.walk()):
            ids[id(node)] = i

        def emit(node: TraceNode, inherited: int) -> None:
            tid = lane_of(node, inherited)
            nid = ids[id(node)]
            args = dict(node.attrs)
            args["status"] = node.status
            us0 = int(round(node.t0 * 1e6))
            us1 = int(round(node.t1 * 1e6))
            if us1 <= us0:
                body.append({"ph": "i", "pid": pid, "tid": tid,
                             "name": node.name, "cat": node.kind,
                             "ts": us0, "s": "t", "args": args})
            else:
                body.append({"ph": "b", "pid": pid, "tid": tid,
                             "name": node.name, "cat": node.kind,
                             "id": nid, "ts": us0, "args": args})
            for child in node.children:
                emit(child, tid)
            if us1 > us0:
                body.append({"ph": "e", "pid": pid, "tid": tid,
                             "name": node.name, "cat": node.kind,
                             "id": nid, "ts": us1, "args": {}})

        emit(self.root, 0)
        body.sort(key=lambda e: e["ts"])  # stable: generation order ties
        return {"traceEvents": events[:meta_n] + body,
                "displayTimeUnit": "ms",
                "metadata": {"campaign": self.cid, "kind": self.kind,
                             "status": self.status, "assembled": True}}

    def dumps_chrome(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":")) + "\n"


def _records_of(source: Any) -> List[Dict[str, Any]]:
    if hasattr(source, "records"):
        return source.records()
    return list(source)


def assemble_campaigns(records: Any, dumps: Sequence[Any] = (),
                       cid: Optional[int] = None) -> List[CampaignTrace]:
    """Assemble one causal tree per campaign found in ``records``.

    ``records`` is an :class:`~repro.storage.ledger.OpLedger` or a raw
    record list; ``dumps`` is any number of span dumps (JSONL strings,
    span-dict lists, or live tracers) — typically one per episode, with
    all Manager incarnations of a run sharing the episode's tracer.
    Passing ``cid`` restricts assembly to that campaign.
    """
    recs = _records_of(records)
    campaigns = fold_campaigns(recs)
    ops = fold_ops(recs)

    # per-op / per-campaign first-record timestamps (the fold keeps only
    # the newest), plus the per-campaign wave timing skeleton
    op_t0: Dict[int, float] = {}
    camp_t0: Dict[int, float] = {}
    camp_t1: Dict[int, float] = {}
    wave_t: Dict[Tuple[int, int], float] = {}
    wave_done_t: Dict[Tuple[int, int], float] = {}
    owners: Dict[int, List[str]] = {}
    for rec in recs:
        t = float(rec.get("t", 0.0))
        if "cid" in rec:
            c = int(rec["cid"])
            camp_t0.setdefault(c, t)
            own = rec.get("owner")
            if own and own not in owners.setdefault(c, []):
                owners[c].append(own)
            phase = rec.get("phase")
            if phase == "wave":
                wave_t.setdefault((c, int(rec.get("wave", -1))), t)
            elif phase == "wave-done":
                wave_done_t.setdefault((c, int(rec.get("wave", -1))), t)
            elif phase in CAMPAIGN_TERMINAL_PHASES:
                camp_t1[c] = t
        elif "op" in rec:
            op_t0.setdefault(int(rec["op"]), t)

    parsed = [_parse_dump(i, d) for i, d in enumerate(dumps)]

    # span indexes: top-level op spans, campaign spans, wave spans, and
    # loose spans (key-parented spans whose parent lived in another
    # incarnation's dump, or fleet trace-point marks)
    op_spans: Dict[int, List[Tuple[_Dump, Dict[str, Any]]]] = {}
    camp_spans: Dict[int, List[Tuple[_Dump, Dict[str, Any]]]] = {}
    wave_spans: Dict[Tuple[int, int], List[Tuple[_Dump, Dict[str, Any]]]] = {}
    loose_op: Dict[int, List[Tuple[_Dump, Dict[str, Any]]]] = {}
    loose_camp: Dict[int, List[Tuple[_Dump, Dict[str, Any]]]] = {}
    for dump in parsed:
        for s in dump.spans:
            attrs = s.get("attrs") or {}
            top = s.get("parent") is None
            if s.get("name") == "fleet.wave" and "campaign" in attrs:
                key = (int(attrs["campaign"]), int(attrs.get("wave", -1)))
                wave_spans.setdefault(key, []).append((dump, s))
            elif s.get("cat") == "op" and "campaign" in attrs and top:
                camp_spans.setdefault(int(attrs["campaign"]), []).append(
                    (dump, s))
            elif s.get("cat") == "op" and "op" in attrs and top:
                op_spans.setdefault(int(attrs["op"]), []).append((dump, s))
            elif top and "op" in attrs:
                loose_op.setdefault(int(attrs["op"]), []).append((dump, s))
            elif top and "campaign" in attrs:
                loose_camp.setdefault(int(attrs["campaign"]), []).append(
                    (dump, s))

    def span_nodes(pairs: List[Tuple[_Dump, Dict[str, Any]]],
                   skip: Tuple[str, ...] = ()) -> List[TraceNode]:
        pairs = sorted(pairs, key=lambda p: (float(p[1]["t0"]),
                                             p[0].index, p[1]["span"]))
        return [_node_from_span(d, s, skip=skip) for d, s in pairs]

    def build_op_node(op_id: int, pod: str) -> Optional[TraceNode]:
        op = ops.get(op_id)
        if op is None:
            return None
        t0 = op_t0.get(op_id, op.t_last)
        node = TraceNode(kind="op", name=op.kind, t0=t0, t1=op.t_last,
                         status=op.phase, pod=pod,
                         attrs={"op": op_id, "context": op.context,
                                "owner": op.owner,
                                "claims": list(op.claims)})
        node.children.extend(span_nodes(op_spans.get(op_id, [])))
        node.children.extend(span_nodes(loose_op.get(op_id, [])))
        if node.children:
            node.t0 = min([node.t0] + [c.t0 for c in node.children])
            node.t1 = max([node.t1] + [c.t1 for c in node.children])
        return node

    out: List[CampaignTrace] = []
    for c in sorted(campaigns):
        if cid is not None and c != cid:
            continue
        lc: LedgerCampaign = campaigns[c]
        root = TraceNode(kind="campaign", name=f"fleet.{lc.kind}",
                         t0=camp_t0.get(c, lc.t_last), t1=lc.t_last,
                         status=lc.phase,
                         attrs={"campaign": c, "units": len(lc.units),
                                "waves": len(lc.waves),
                                "policy": dict(lc.policy)})
        if c in camp_t1:
            root.t1 = camp_t1[c]
        root.children.extend(span_nodes(camp_spans.get(c, []),
                                        skip=("fleet.wave",)))
        root.children.extend(span_nodes(loose_camp.get(c, [])))

        # wave membership: the journaled plan plus any recorded pod the
        # plan did not cover (a messy failover's stray outcome record)
        planned: Dict[int, List[str]] = {
            w: list(pods) for w, pods in enumerate(lc.waves)}
        for pod, rec in sorted(lc.pods.items()):
            w = int(rec.get("wave", -1))
            target = planned.setdefault(w if w >= 0 else len(planned), [])
            if pod not in target:
                target.append(pod)

        pods_in_tree: List[str] = []
        adopted: List[str] = []
        attached_ops: List[int] = []
        for w in sorted(planned):
            pods = planned[w]
            wnode = TraceNode(kind="wave", name="fleet.wave",
                              t0=wave_t.get((c, w), root.t0),
                              t1=wave_done_t.get((c, w), root.t1),
                              status="ok" if w in lc.waves_done else "open",
                              attrs={"campaign": c, "wave": w,
                                     "pods": len(pods),
                                     "owner": lc.wave_owners.get(w)})
            wnode.children.extend(span_nodes(wave_spans.get((c, w), [])))
            for pod in pods:
                rec = lc.pods.get(pod)
                unit = TraceNode(
                    kind="unit", name=f"unit.{pod}", pod=pod,
                    t0=wnode.t0, t1=wnode.t1,
                    status=rec.get("status", UNIT_UNRECORDED) if rec
                    else UNIT_UNRECORDED,
                    attrs={"campaign": c, "wave": w})
                if rec:
                    unit.t1 = float(rec.get("t", wnode.t1))
                    for k in ("op", "downtime", "attempts", "adopted"):
                        if k in rec:
                            unit.attrs[k] = rec[k]
                    if rec.get("adopted"):
                        adopted.append(pod)
                    op_id = rec.get("op")
                    if op_id is not None:
                        opnode = build_op_node(int(op_id), pod)
                        if opnode is not None:
                            unit.children.append(opnode)
                            attached_ops.append(int(op_id))
                # sibling ops that touched this pod inside the campaign
                # window (retries that failed, the migrate/restart legs)
                for oid in sorted(ops):
                    if oid in attached_ops:
                        continue
                    op = ops[oid]
                    if not any(t[1] == pod for t in op.targets):
                        continue
                    t_begin = op_t0.get(oid, op.t_last)
                    if t_begin < root.t0 or t_begin > unit.t1:
                        continue
                    opnode = build_op_node(oid, pod)
                    if opnode is not None:
                        unit.children.append(opnode)
                        attached_ops.append(oid)
                if unit.children:
                    unit.t0 = min([unit.t0] + [ch.t0 for ch in unit.children])
                    unit.t1 = max([unit.t1] + [ch.t1 for ch in unit.children])
                pods_in_tree.append(pod)
                wnode.children.append(unit)
            if wnode.children:
                wnode.t0 = min([wnode.t0] + [ch.t0 for ch in wnode.children])
                wnode.t1 = max([wnode.t1] + [ch.t1 for ch in wnode.children])
            root.children.append(wnode)
        if root.children:
            root.t1 = max([root.t1] + [ch.t1 for ch in root.children])
        root.sort()

        # parent back-links for JSONL export (walk order needs them)
        for node in root.walk():
            for child in node.children:
                child._parent = node  # type: ignore[attr-defined]

        referenced = {int(r["op"]) for r in lc.pods.values()
                      if r.get("op") is not None}
        out.append(CampaignTrace(
            cid=c, kind=lc.kind, status=lc.phase,
            owners=owners.get(c, []), root=root,
            policy=dict(lc.policy),
            pods_in_tree=sorted(pods_in_tree),
            pods_missing=sorted(
                (set(p for ps in planned.values() for p in ps)
                 | set(lc.pods)) - set(pods_in_tree)),
            adopted=sorted(adopted),
            ops_in_tree=sorted(set(attached_ops)),
            ops_unattached=sorted(referenced - set(attached_ops)),
        ))
    return out


def assemble_campaign(records: Any, dumps: Sequence[Any] = (),
                      cid: Optional[int] = None) -> CampaignTrace:
    """Assemble exactly one campaign (the only one, or ``cid``)."""
    traces = assemble_campaigns(records, dumps, cid=cid)
    if not traces:
        raise ValueError("no campaign records to assemble"
                         + (f" for cid {cid}" if cid is not None else ""))
    if len(traces) > 1:
        raise ValueError(
            f"{len(traces)} campaigns in ledger; pass cid= to pick one")
    return traces[0]
