"""Sim-clock windowed timeseries over the metrics registry.

One-shot aggregates (the :class:`~repro.obs.metrics.MetricsRegistry`
snapshot) answer "how much, total?"; at fleet scale the interesting
signal is *when* — per-wave downtime distributions, in-flight occupancy,
network burst shape over a campaign.  A :class:`SeriesBank` buckets
every instrument sample into fixed simulated-time windows as it happens:

* counters  → per-window increments, exported as rates (units/s),
* gauges    → last sample per window (carried forward when silent),
* histograms→ per-window percentiles + sample counts.

Attach one to a registry with
:meth:`~repro.obs.metrics.MetricsRegistry.enable_series`; existing and
future instruments report to it transparently, so all the ``fleet.*`` /
manager / agent instrumentation added since PR 3 feeds series with no
call-site changes.  Like the tracer, recording is pure bookkeeping on
the simulated clock — a run with series enabled has identical timings to
one without, and :meth:`SeriesBank.dumps` is byte-identical across
same-seed runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .metrics import percentile

#: default window width in simulated seconds.
DEFAULT_WINDOW_S = 5.0


class SeriesBank:
    """Windowed sample store keyed by instrument name."""

    def __init__(self, engine, window_s: float = DEFAULT_WINDOW_S) -> None:
        self.engine = engine
        self.window_s = float(window_s)
        #: counter name -> {window index -> summed increments}
        self.counters: Dict[str, Dict[int, float]] = {}
        #: gauge name -> {window index -> last sample}
        self.gauges: Dict[str, Dict[int, float]] = {}
        #: gauge name -> {window index -> max sample} (occupancy peaks —
        #: a cap rule needs the high-water mark, not the closing value)
        self.gauge_peaks: Dict[str, Dict[int, float]] = {}
        #: histogram name -> {window index -> [samples]}
        self.hists: Dict[str, Dict[int, List[float]]] = {}

    # ------------------------------------------------------------------
    def _window(self) -> int:
        return int(self.engine.now / self.window_s)

    def record_counter(self, name: str, amount: float) -> None:
        w = self.counters.setdefault(name, {})
        idx = self._window()
        w[idx] = w.get(idx, 0.0) + amount

    def record_gauge(self, name: str, value: float) -> None:
        idx = self._window()
        self.gauges.setdefault(name, {})[idx] = value
        peaks = self.gauge_peaks.setdefault(name, {})
        peaks[idx] = max(peaks.get(idx, value), value)

    def record_hist(self, name: str, value: float) -> None:
        self.hists.setdefault(name, {}).setdefault(
            self._window(), []).append(value)

    # ------------------------------------------------------------------
    def window_count(self) -> int:
        """Windows from t=0 through the last one holding a sample."""
        last = -1
        for bank in (self.counters, self.gauges, self.hists):
            for windows in bank.values():
                if windows:
                    last = max(last, max(windows))
        return last + 1

    def to_columns(self, percentiles: Sequence[int] = (50, 99),
                   ) -> Dict[str, Any]:
        """Deterministic columnar export: dense per-window columns.

        ``{"schema": 1, "window_s": W, "t": [...window starts...],
        "series": {name: [value per window]}}`` — counters as
        ``<name>.rate`` (units/s), gauges as ``<name>.last``
        (carried forward across silent windows) plus ``<name>.max``
        (in-window high-water mark, ``None`` when silent), histograms
        as ``<name>.p<q>`` and ``<name>.count``.  Column order is sorted by
        name; empty cells are ``None`` (or ``0.0`` for rates/counts) so
        every column has the same length and the artifact is
        byte-identical across same-seed runs.
        """
        n = self.window_count()
        cols: Dict[str, List[Any]] = {}
        for name in sorted(self.counters):
            windows = self.counters[name]
            cols[f"{name}.rate"] = [
                round(windows.get(i, 0.0) / self.window_s, 9)
                for i in range(n)]
        for name in sorted(self.gauges):
            windows = self.gauges[name]
            col: List[Optional[float]] = []
            last: Optional[float] = None
            for i in range(n):
                if i in windows:
                    last = windows[i]
                col.append(last)
            cols[f"{name}.last"] = col
            peaks = self.gauge_peaks.get(name, {})
            cols[f"{name}.max"] = [peaks.get(i) for i in range(n)]
        for name in sorted(self.hists):
            windows = self.hists[name]
            for q in percentiles:
                cols[f"{name}.p{q}"] = [
                    (round(percentile(windows[i], q), 9)
                     if windows.get(i) else None) for i in range(n)]
            cols[f"{name}.count"] = [len(windows.get(i, ())) for i in range(n)]
        return {"schema": 1, "window_s": self.window_s,
                "t": [round(i * self.window_s, 9) for i in range(n)],
                "series": cols}

    def dumps(self, percentiles: Sequence[int] = (50, 99)) -> str:
        return json.dumps(self.to_columns(percentiles), sort_keys=True,
                          separators=(",", ":")) + "\n"
