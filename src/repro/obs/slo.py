"""Rule-driven SLO auditing over assembled campaign traces and series.

A campaign that "completed" can still have blown every promise that
matters: a pod frozen past its downtime budget, a net-block window that
stalled traffic for seconds, a straggler wave, a retry storm.  The
auditor turns those promises into declared budgets
(:class:`SloBudget`), measures each one against an assembled
:class:`~repro.obs.assemble.CampaignTrace` (and optionally a
:class:`~repro.obs.series.SeriesBank` column export), and emits a
structured :class:`SloReport` of per-rule verdicts.  Chaos batteries
fold the verdicts in as extra invariants; ``zapc fleet --audit`` renders
them for humans and sets the exit code from them.

The *coverage* rule is always on: an assembled tree that fails to
account for a pod-unit the ledger knows about is an observability bug
regardless of budgets, and it is the acceptance oracle for
failover-stitched assembly.

:class:`WallProfiler` is the odd one out — the only wall-clock
instrument in the codebase.  It measures *simulator* cost (real seconds
per labelled phase of a run), which is explicitly nondeterministic and
therefore exported next to — never inside — the deterministic sim
metrics (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..metrics import print_table
from .assemble import CampaignTrace


@dataclass(frozen=True)
class SloBudget:
    """Declared budgets; ``None`` disables a rule."""

    #: max per-pod downtime over ok units, in simulated seconds.
    pod_downtime_s: Optional[float] = None
    #: max length of any ``agent.net_block`` window, in simulated seconds.
    net_block_s: Optional[float] = None
    #: max single-wave latency (wave start → wave done), simulated seconds.
    wave_latency_s: Optional[float] = None
    #: max retries per recorded unit (sum of attempts-1 over units).
    retry_rate: Optional[float] = None
    #: max whole-campaign duration, simulated seconds.
    campaign_duration_s: Optional[float] = None
    #: max concurrent in-flight units (checked against the
    #: ``fleet.inflight`` gauge series when a series export is given).
    max_inflight: Optional[int] = None

    @classmethod
    def from_policy(cls, policy: Dict[str, Any]) -> "SloBudget":
        """Budgets implied by a journaled campaign policy: the downtime
        budget it declared, the in-flight cap it promised to honor."""
        return cls(pod_downtime_s=policy.get("downtime_budget"),
                   max_inflight=policy.get("max_inflight"))


@dataclass
class SloVerdict:
    """One rule's outcome."""

    rule: str
    ok: bool
    measured: Optional[float]
    budget: Optional[float]
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.rule, "ok": self.ok,
                "measured": (None if self.measured is None
                             else round(float(self.measured), 9)),
                "budget": (None if self.budget is None
                           else round(float(self.budget), 9)),
                "detail": self.detail}


@dataclass
class SloReport:
    """All verdicts for one campaign."""

    cid: int
    status: str
    verdicts: List[SloVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def violations(self) -> List[SloVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": 1, "cid": self.cid, "status": self.status,
                "ok": self.ok,
                "verdicts": [v.to_dict() for v in self.verdicts]}

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        rows = [(v.rule, "PASS" if v.ok else "FAIL",
                 "-" if v.measured is None else f"{v.measured:.6f}",
                 "-" if v.budget is None else f"{v.budget:.6f}",
                 v.detail or "-") for v in self.verdicts]
        return print_table(
            f"SLO audit — campaign {self.cid} ({self.status})",
            ("rule", "verdict", "measured", "budget", "detail"), rows)


def audit_campaign(trace: CampaignTrace,
                   budget: Optional[SloBudget] = None,
                   series: Optional[Dict[str, Any]] = None) -> SloReport:
    """Audit one assembled campaign against ``budget``.

    ``series`` is an optional :meth:`SeriesBank.to_columns` export; when
    present the in-flight cap rule reads the ``fleet.inflight`` gauge
    column.  Budgets default to the ones the campaign's own journaled
    policy declared.
    """
    if budget is None:
        budget = SloBudget.from_policy(trace.policy)
    report = SloReport(cid=trace.cid, status=trace.status)
    add = report.verdicts.append

    cov = trace.coverage()
    add(SloVerdict(
        rule="coverage", ok=cov["complete"],
        measured=float(cov["in_tree"]), budget=float(cov["units"]),
        detail=("all pod-units accounted for" if cov["complete"] else
                "missing: " + ",".join(cov["missing"]))))

    units = trace.units()
    recorded = [u for u in units if u.status != "unrecorded"]

    if budget.pod_downtime_s is not None:
        timed = [(float(u.attrs["downtime"]), u.pod) for u in recorded
                 if u.attrs.get("downtime") is not None]
        worst, pod = max(timed, default=(0.0, None))
        over = sorted(p for d, p in timed if d > budget.pod_downtime_s)
        add(SloVerdict(
            rule="pod-downtime", ok=not over, measured=worst,
            budget=budget.pod_downtime_s,
            detail=(f"worst {pod}" if not over else
                    f"{len(over)} over budget: " + ",".join(over[:5]))))

    if budget.net_block_s is not None:
        blocks = [(n.duration, n.pod) for n in trace.root.walk()
                  if n.name == "agent.net_block"]
        worst, pod = max(blocks, default=(0.0, None))
        add(SloVerdict(
            rule="net-block", ok=worst <= budget.net_block_s,
            measured=worst, budget=budget.net_block_s,
            detail=f"{len(blocks)} windows, worst {pod}"))

    if budget.wave_latency_s is not None:
        waves = [(n.duration, n.attrs.get("wave")) for n in trace.root.children
                 if n.kind == "wave"]
        worst, w = max(waves, default=(0.0, None))
        add(SloVerdict(
            rule="wave-latency", ok=worst <= budget.wave_latency_s,
            measured=worst, budget=budget.wave_latency_s,
            detail=f"worst wave {w}"))

    if budget.retry_rate is not None:
        retries = sum(max(0, int(u.attrs.get("attempts", 1)) - 1)
                      for u in recorded)
        rate = retries / len(recorded) if recorded else 0.0
        add(SloVerdict(
            rule="retry-rate", ok=rate <= budget.retry_rate,
            measured=rate, budget=budget.retry_rate,
            detail=f"{retries} retries / {len(recorded)} units"))

    if budget.campaign_duration_s is not None:
        add(SloVerdict(
            rule="campaign-duration",
            ok=trace.root.duration <= budget.campaign_duration_s,
            measured=trace.root.duration,
            budget=budget.campaign_duration_s,
            detail=f"{len(trace.root.children)} waves"))

    if budget.max_inflight is not None and series is not None:
        col = series.get("series", {}).get("fleet.inflight.max") or []
        peak = max((v for v in col if v is not None), default=0.0)
        add(SloVerdict(
            rule="inflight-cap", ok=peak <= budget.max_inflight,
            measured=float(peak), budget=float(budget.max_inflight),
            detail=f"{len(col)} windows"))

    return report


class WallProfiler:
    """Real-time cost of the simulator itself, per labelled phase.

    The one deliberately nondeterministic instrument: accumulates
    ``time.perf_counter`` seconds under :meth:`phase` labels so runs can
    report what the *simulation* cost next to what it simulated.  Always
    export its numbers beside — never inside — deterministic artifacts
    (the committed ``BENCH_core.json`` is byte-diffed in CI; wall times
    go to the ``.wall.json`` sidecar).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, label: str):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - t0
            self.seconds[label] = self.seconds.get(label, 0.0) + dt
            self.calls[label] = self.calls.get(label, 0) + 1

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def to_dict(self) -> Dict[str, Any]:
        return {"wall_s": {k: round(v, 6)
                           for k, v in sorted(self.seconds.items())},
                "calls": dict(sorted(self.calls.items())),
                "total_s": round(self.total, 6)}

    def render(self) -> str:
        rows = [(label, self.calls[label], f"{self.seconds[label]:.3f}")
                for label in sorted(self.seconds)]
        rows.append(("total", sum(self.calls.values()), f"{self.total:.3f}"))
        return print_table("simulator wall time (real seconds)",
                           ("phase", "calls", "wall [s]"), rows)
