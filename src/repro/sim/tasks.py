"""Futures and host tasks for the simulation kernel.

*Host tasks* are generator-based coroutines driven by the event engine.
They model the user-level tools of the paper that live **outside** pods —
the ZapC Manager, the per-node Agents, measurement probes — and are never
checkpointed.  (Application processes inside pods are *not* host tasks;
they are checkpointable :class:`~repro.vos.process.Process` images.)

A host task is a generator that ``yield``\\ s :class:`Future` objects; the
engine resumes the task with the future's result (or throws its
exception) once it resolves.  ``yield None`` re-schedules the task at the
current time (a cooperative yield point).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..errors import SimError

#: Type alias for the generator type host tasks are written as.
TaskGen = Generator["Future", Any, Any]


class Future:
    """A single-assignment value that resolves at some simulated time.

    Futures are the only blocking primitive for host tasks.  Callbacks
    added with :meth:`add_done_callback` run synchronously when the
    future resolves (the engine uses this to wake waiting tasks).
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[[Future], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        """Whether the future has resolved (result or exception)."""
        return self._done

    @property
    def result(self) -> Any:
        """The resolved value; raises if not yet done or resolved to an error."""
        if not self._done:
            raise SimError(f"future {self.name!r} not resolved")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception the future resolved to, if any."""
        return self._exception

    def set_result(self, value: Any) -> None:
        """Resolve the future successfully with ``value``."""
        self._resolve(value, None)

    def set_exception(self, exc: BaseException) -> None:
        """Resolve the future with an exception."""
        self._resolve(None, exc)

    def _resolve(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._result = value
        self._exception = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, cb: Callable[["Future"], None]) -> None:
        """Run ``cb(self)`` when resolved; immediately if already done."""
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "pending"
        return f"Future({self.name!r}, {state})"


def all_of(futures: List[Future], name: str = "all_of") -> Future:
    """Combine futures into one that resolves with the list of results.

    Resolves with the first exception if any member fails.
    """
    combined = Future(name)
    remaining = len(futures)
    if remaining == 0:
        combined.set_result([])
        return combined
    results: List[Any] = [None] * remaining

    def make_cb(i: int) -> Callable[[Future], None]:
        def cb(fut: Future) -> None:
            nonlocal remaining
            if combined.done:
                return
            if fut.exception is not None:
                combined.set_exception(fut.exception)
                return
            results[i] = fut._result
            remaining -= 1
            if remaining == 0:
                combined.set_result(results)

        return cb

    for i, fut in enumerate(futures):
        fut.add_done_callback(make_cb(i))
    return combined


class Task:
    """A host coroutine being driven by the engine.

    Tasks expose a :attr:`finished` future resolving with the generator's
    return value, which other tasks can wait on (``yield task.finished``).
    """

    def __init__(self, engine: "Engine", gen: TaskGen, name: str = "task") -> None:  # noqa: F821
        self._engine = engine
        self._gen = gen
        self.name = name
        self.finished = Future(f"{name}.finished")
        self._cancelled = False

    @property
    def done(self) -> bool:
        """Whether the coroutine has returned, raised, or been cancelled."""
        return self.finished.done

    def cancel(self) -> None:
        """Stop the task; its ``finished`` future resolves with ``None``.

        Cancellation closes the underlying generator so ``finally`` blocks
        inside the task still run.
        """
        if self.finished.done:
            return
        self._cancelled = True
        self._gen.close()
        self.finished.set_result(None)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        """Advance the generator one hop; wiring for the engine only."""
        if self.finished.done:
            return
        try:
            if exc is not None:
                yielded = self._gen.throw(exc)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.finished.set_result(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - task crash propagates via future
            self.finished.set_exception(err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            # Cooperative yield: resume at the current time after other
            # events scheduled "now" get a chance to run.
            self._engine.schedule(0.0, self._step, None)
            return
        if not isinstance(yielded, Future):
            self._step(exc=SimError(f"task {self.name!r} yielded {type(yielded).__name__}, expected Future"))
            return

        def on_done(fut: Future) -> None:
            if fut.exception is not None:
                self._engine.schedule(0.0, self._step, None, fut.exception)
            else:
                self._engine.schedule(0.0, self._step, fut._result)

        yielded.add_done_callback(on_done)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task({self.name!r}, done={self.done})"
