"""Simulated wall-clock time.

All durations in the simulator are expressed in *seconds* of simulated
time as ``float``.  The clock only moves forward, and only the event
engine may advance it.  Helper constants are provided so cost models read
naturally (``5 * MILLISECONDS`` instead of ``5e-3``).
"""

from __future__ import annotations

#: One second of simulated time (the base unit).
SECONDS = 1.0
#: One millisecond of simulated time.
MILLISECONDS = 1e-3
#: One microsecond of simulated time.
MICROSECONDS = 1e-6
#: One nanosecond of simulated time.
NANOSECONDS = 1e-9

#: One *tick* — the smallest distinguishable unit of exported simulated
#: time.  Trace timestamps (Chrome ``ts``) are expressed in ticks, and
#: phase-accounting reconciliation allows ±1 tick of float slack.
TICK = MICROSECONDS


def to_ticks(t: float) -> float:
    """Simulated seconds → ticks (µs), rounded for stable export."""
    return round(t / TICK, 3)


class Clock:
    """Monotonic simulated clock owned by an :class:`~repro.sim.engine.Engine`.

    The clock starts at ``0.0``.  Only :meth:`advance_to` mutates it, and
    it refuses to move backwards — a regression guard for the event loop.
    """

    __slots__ = ("_now",)

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`ValueError` if ``t`` is in the past; equal times
        are permitted (many events share a timestamp).
        """
        if t < self._now:
            raise ValueError(f"clock cannot run backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now:.9f})"
