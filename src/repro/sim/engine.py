"""The discrete-event simulation engine.

One :class:`Engine` simulates the whole cluster: every node's kernel,
every NIC, every pod process and every host task shares the single event
queue, so causality across nodes is exact.  Events at equal timestamps
run in scheduling order (FIFO), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import DeadlockError, SimError
from .clock import Clock, to_ticks
from .rng import RngHub
from .tasks import Future, Task, TaskGen


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "_cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class Engine:
    """Event loop + clock + RNG hub for a simulated cluster.

    Typical use::

        eng = Engine(seed=42)
        eng.spawn(manager_task(...), name="manager")
        eng.run()

    The engine stops when the queue drains, when ``until`` is reached, or
    when ``stop()`` is called from inside an event.
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.rng = RngHub(seed)
        self._heap: List[Tuple[float, int, EventHandle, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self._stopped = False
        self._events_executed = 0
        #: every spawned host task, pruned of finished ones lazily; lets
        #: failure tooling assert that no protocol task was orphaned.
        self._tasks: List[Task] = []
        #: Registered "is anything still blocked?" probes used for
        #: deadlock detection when the queue drains (kernels register one).
        self.blocked_probes: List[Callable[[], List[str]]] = []

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def now_ticks(self) -> float:
        """Current simulated time in ticks (µs) — what the observability
        layer stamps on exported trace events."""
        return to_ticks(self.clock.now)

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (profiling aid)."""
        return self._events_executed

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, at: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``at``."""
        if at < self.now:
            raise SimError(f"cannot schedule in the past: {at} < {self.now}")
        handle = EventHandle(at)
        heapq.heappush(self._heap, (at, next(self._seq), handle, fn, args))
        return handle

    def sleep(self, delay: float) -> Future:
        """Future that resolves after ``delay`` seconds (for host tasks)."""
        fut = Future(f"sleep({delay})")
        self.schedule(delay, fut.set_result, None)
        return fut

    def timeout(self, future: Future, delay: float) -> Future:
        """Wrap ``future`` so it resolves with ``None`` after ``delay``.

        Resolves with ``(True, result)`` if the inner future finished in
        time and ``(False, None)`` on timeout — host tasks use this for
        failure detection (e.g. the Manager noticing a dead Agent).
        """
        wrapped = Future(f"timeout({future.name})")

        def on_inner(fut: Future) -> None:
            if not wrapped.done:
                if fut.exception is not None:
                    wrapped.set_exception(fut.exception)
                else:
                    wrapped.set_result((True, fut._result))

        def on_timer(_: Any) -> None:
            if not wrapped.done:
                wrapped.set_result((False, None))

        future.add_done_callback(on_inner)
        self.schedule(delay, on_timer, None)
        return wrapped

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def spawn(self, gen: TaskGen, name: str = "task") -> Task:
        """Start a host task driving generator ``gen``; returns its Task."""
        task = Task(self, gen, name)
        if len(self._tasks) > 512:
            self._tasks = [t for t in self._tasks if not t.done]
        self._tasks.append(task)
        self.schedule(0.0, task._step, None)
        return task

    def live_tasks(self) -> List[Task]:
        """Host tasks spawned on this engine that have not finished.

        The Manager's abort path must leave no protocol task behind;
        tests assert that through this registry.
        """
        self._tasks = [t for t in self._tasks if not t.done]
        return list(self._tasks)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = False,
    ) -> float:
        """Execute events until the queue drains (or a limit hits).

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events exactly at
            ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        check_deadlock:
            When the queue drains, poll :attr:`blocked_probes`; if any
            process/task is still blocked, raise :class:`DeadlockError`
            listing the stuck parties.

        Returns the simulated time at which the loop stopped.
        """
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            at, _seq, handle, fn, args = self._heap[0]
            if until is not None and at > until:
                self.clock.advance_to(until)
                return self.now
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(at)
            fn(*args)
            executed += 1
            self._events_executed += 1
            if max_events is not None and executed >= max_events:
                raise SimError(f"exceeded max_events={max_events} at t={self.now}")
        if check_deadlock and not self._stopped:
            stuck: List[str] = []
            for probe in self.blocked_probes:
                stuck.extend(probe())
            if stuck:
                raise DeadlockError("event queue drained with blocked parties: " + ", ".join(sorted(stuck)))
        return self.now

    def run_task(self, gen: TaskGen, name: str = "main", until: Optional[float] = None) -> Any:
        """Spawn ``gen`` and run the loop until it finishes; return its value.

        Convenience wrapper used heavily by tests and the harness.
        """
        task = self.spawn(gen, name)
        task.finished.add_done_callback(lambda _f: self.stop())
        self.run(until=until)
        if not task.done:
            raise SimError(f"task {name!r} did not finish by t={self.now}")
        return task.finished.result
