"""Discrete-event simulation kernel.

The foundation everything else runs on: a deterministic event loop
(:class:`~repro.sim.engine.Engine`), simulated time
(:mod:`repro.sim.clock`), seeded random streams
(:class:`~repro.sim.rng.RngHub`) and generator-based host tasks
(:mod:`repro.sim.tasks`).
"""

from .clock import Clock, MICROSECONDS, MILLISECONDS, NANOSECONDS, SECONDS
from .engine import Engine, EventHandle
from .rng import RngHub
from .tasks import Future, Task, all_of

__all__ = [
    "Clock",
    "Engine",
    "EventHandle",
    "Future",
    "RngHub",
    "Task",
    "all_of",
    "SECONDS",
    "MILLISECONDS",
    "MICROSECONDS",
    "NANOSECONDS",
]
