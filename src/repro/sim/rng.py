"""Deterministic random-number streams.

A single root seed fans out into independent, *named* streams so that
adding a new consumer of randomness (say, a packet-loss model) cannot
perturb the draws seen by existing consumers (say, a workload generator).
This is the standard reproducibility discipline for discrete-event
simulators: identical seeds + identical event order = identical runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngHub:
    """Factory of named, independent :class:`random.Random` streams.

    Streams are derived by hashing ``(root_seed, name)`` so the mapping is
    stable across processes and Python versions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        """Drop all derived streams (they re-derive on next use)."""
        self._streams.clear()
