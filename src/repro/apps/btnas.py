"""BT/NAS — a miniature of the NAS Block-Tridiagonal benchmark.

"Involves substantial network communication along the computation" and
"required a square number of nodes to execute".  The miniature keeps
both properties: a q×q two-dimensional domain decomposition (so the
world size must be a perfect square) over a toroidal grid, with
four-neighbor face exchanges every iteration, a global residual
allreduce, and heavy per-iteration computation.  Faces are padded to
realistic sizes so the network actually carries BT-like volumes.

The update is elementwise, so the distributed run reproduces the
sequential reference (:func:`reference_btnas`) bit-for-bit up to the
reduction order of the final checksum.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..middleware import (
    emit_allreduce,
    emit_finalize,
    emit_gather,
    emit_init,
    emit_irecv,
    emit_isend,
    emit_req_list,
    emit_req_value,
    emit_waitall,
)
from ..vos.program import imm, program
from .common import btnas_ballast

#: default global grid edge (G×G doubles per full problem).
DEFAULT_GRID = 48
#: default iteration count.
DEFAULT_ITERS = 30
#: simulated cycles per grid point per iteration.
DEFAULT_CYCLES_PER_POINT = 400_000
#: bytes of padding per face message (models BT's large exchanges).
DEFAULT_FACE_PAD = 32_768

RELAX = 0.3


def initial_block(G: int, q: int, r: int, c: int) -> np.ndarray:
    """Deterministic initial condition of block (r, c) of a q×q split."""
    B = G // q
    gi = np.arange(r * B, (r + 1) * B)[:, None]
    gj = np.arange(c * B, (c + 1) * B)[None, :]
    return (((gi * 31 + gj * 17) % 97) / 97.0).astype(np.float64)


def source_block(G: int, q: int, r: int, c: int) -> np.ndarray:
    """Deterministic forcing term of block (r, c)."""
    B = G // q
    gi = np.arange(r * B, (r + 1) * B)[:, None].astype(np.float64)
    gj = np.arange(c * B, (c + 1) * B)[None, :].astype(np.float64)
    return 0.01 * np.cos(gi * 0.7) * np.sin(gj * 0.9)


def bt_step(u: np.ndarray, top: np.ndarray, bottom: np.ndarray,
            left: np.ndarray, right: np.ndarray, src: np.ndarray) -> Tuple[np.ndarray, float]:
    """One smoothing step given the four halos; returns (u', |Δ|₁)."""
    up = np.vstack([top[None, :], u[:-1, :]])
    down = np.vstack([u[1:, :], bottom[None, :]])
    lft = np.hstack([left[:, None], u[:, :-1]])
    rgt = np.hstack([u[:, 1:], right[:, None]])
    smooth = 0.25 * (up + down + lft + rgt)
    unew = u + RELAX * (smooth - u) + src
    return unew, float(np.abs(unew - u).sum())


def reference_btnas(G: int = DEFAULT_GRID, iters: int = DEFAULT_ITERS) -> Tuple[float, list]:
    """Sequential reference: (final checksum, per-iteration residuals)."""
    u = initial_block(G, 1, 0, 0)
    src = source_block(G, 1, 0, 0)
    residuals = []
    for _ in range(iters):
        u, res = bt_step(u, u[-1, :], u[0, :], u[:, -1], u[:, 0], src)
        residuals.append(res)
    return float(u.sum()), residuals


def _pack_face(arr: np.ndarray, pad: int) -> tuple:
    return (arr.copy(), b"\0" * pad)


def _face(msg: tuple) -> np.ndarray:
    return msg[0]


@program("apps.btnas")
def _btnas(b, *, rank, nprocs, vips, grid=DEFAULT_GRID, iters=DEFAULT_ITERS,
           cycles_per_point=DEFAULT_CYCLES_PER_POINT, face_pad=DEFAULT_FACE_PAD):
    q = int(math.isqrt(nprocs))
    if q * q != nprocs:
        raise ValueError("BT/NAS requires a square number of ranks")
    if grid % q:
        raise ValueError("grid must divide evenly across the rank mesh")
    r, c = divmod(rank, q)
    up = ((r - 1) % q) * q + c
    down = ((r + 1) % q) * q + c
    left = r * q + (c - 1) % q
    right = r * q + (c + 1) % q

    b.alloc(imm(btnas_ballast(nprocs)), "heap")
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    b.op("u", lambda G=grid, Q=q, R=r, C=c: initial_block(G, Q, R, C))
    b.op("src", lambda G=grid, Q=q, R=r, C=c: source_block(G, Q, R, C))
    b.mov("residuals", imm([]))
    cycles = (cycles_per_point * (grid * grid)) // nprocs

    with b.for_range("__it", imm(0), imm(iters)):
        if q == 1:
            # single block: toroidal halos come from my own edges
            b.op("t", lambda u: u[-1, :].copy(), "u")
            b.op("bo", lambda u: u[0, :].copy(), "u")
            b.op("l", lambda u: u[:, -1].copy(), "u")
            b.op("ri", lambda u: u[:, 0].copy(), "u")
        else:
            # post all four halo receives up front (nonblocking, matched
            # by source+tag — arrival order does not matter), then send
            # the boundary faces, then complete the exchange: the real
            # BT communication structure
            emit_req_list(b, "__halo_reqs")
            emit_irecv(b, "__halo_reqs", src=up, tag="h.down")     # → top halo
            emit_irecv(b, "__halo_reqs", src=down, tag="h.up")     # → bottom halo
            emit_irecv(b, "__halo_reqs", src=left, tag="h.right")  # → left halo
            emit_irecv(b, "__halo_reqs", src=right, tag="h.left")  # → right halo
            b.op("__fu", lambda u, p=face_pad: _pack_face(u[0, :], p), "u")
            emit_isend(b, up, "__fu", tag="h.up")
            b.op("__fd", lambda u, p=face_pad: _pack_face(u[-1, :], p), "u")
            emit_isend(b, down, "__fd", tag="h.down")
            b.op("__fl", lambda u, p=face_pad: _pack_face(u[:, 0], p), "u")
            emit_isend(b, left, "__fl", tag="h.left")
            b.op("__fr", lambda u, p=face_pad: _pack_face(u[:, -1], p), "u")
            emit_isend(b, right, "__fr", tag="h.right")
            emit_waitall(b, "__halo_reqs")
            emit_req_value(b, "__halo_reqs", 0, "__hu")
            b.op("t", _face, "__hu")
            emit_req_value(b, "__halo_reqs", 1, "__hd")
            b.op("bo", _face, "__hd")
            emit_req_value(b, "__halo_reqs", 2, "__hl")
            b.op("l", _face, "__hl")
            emit_req_value(b, "__halo_reqs", 3, "__hr")
            b.op("ri", _face, "__hr")
        b.op("__stepped", bt_step, "u", "t", "bo", "l", "ri", "src")
        b.op("u", lambda s: s[0], "__stepped")
        b.op("__res", lambda s: s[1], "__stepped")
        b.compute(imm(cycles))
        emit_allreduce(b, "__res", "__gres", op="sum", rank=rank, size=nprocs)
        b.op("residuals", lambda rs, g: rs + [g], "residuals", "__gres")

    # final verification data: the root assembles the global checksum
    b.op("__mysum", lambda u: float(u.sum()), "u")
    emit_gather(b, "__mysum", "__sums", rank=rank, size=nprocs)
    if rank == 0:
        b.op("checksum", lambda sums: float(sum(sums)), "__sums")
    else:
        b.mov("checksum", imm(None))
    emit_finalize(b)
    b.halt(imm(0))


def params_of(rank: int, vips, *, nprocs: int, grid: int = DEFAULT_GRID,
              iters: int = DEFAULT_ITERS,
              cycles_per_point: int = DEFAULT_CYCLES_PER_POINT,
              face_pad: int = DEFAULT_FACE_PAD) -> dict:
    """Program params for :func:`repro.middleware.launch_spmd`."""
    return {
        "rank": rank, "nprocs": nprocs, "vips": list(vips), "grid": grid,
        "iters": iters, "cycles_per_point": cycles_per_point, "face_pad": face_pad,
    }
