"""POV-Ray — the PVM ray tracer.

"A CPU-intensive ray-tracing application that fully exploits cluster
parallelism to render three-dimensional graphics."  The PVM version
splits the image into tiles that a master hands to workers dynamically
(work-stealing by request), so faster tiles rebalance automatically.

The miniature "renders" a tile by evaluating a deterministic integer
pixel function (exact checksums — no float ordering concerns) and
charging cycles proportional to the tile's scene complexity, which
varies across the image as real scenes do.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..middleware import (
    emit_master_init,
    emit_pvm_recv,
    emit_pvm_recv_any,
    emit_pvm_send,
    emit_worker_close,
    emit_worker_init,
)
from ..vos.program import imm, program
from .common import povray_ballast

#: default image and tiling.
DEFAULT_WIDTH = 256
DEFAULT_HEIGHT = 192
DEFAULT_TILE = 64
#: simulated cycles per pixel at complexity 1.0.
DEFAULT_CYCLES_PER_PIXEL = 1_200_000

_A = 2654435761
_B = 40503
_M = 1 << 32


def make_tiles(width: int, height: int, tile: int) -> List[Tuple[int, int, int, int]]:
    """The work queue: (x0, y0, w, h) tiles in scanline order."""
    tiles = []
    for y0 in range(0, height, tile):
        for x0 in range(0, width, tile):
            tiles.append((x0, y0, min(tile, width - x0), min(tile, height - y0)))
    return tiles


def render_tile(job: Tuple[int, int, int, int]) -> int:
    """The pixel function summed over a tile (exact integer checksum)."""
    x0, y0, w, h = job
    x = np.arange(x0, x0 + w, dtype=np.uint64)[None, :]
    y = np.arange(y0, y0 + h, dtype=np.uint64)[:, None]
    pix = ((x * _A) ^ (y * _B)) % _M
    return int(pix.sum())


def tile_complexity(job: Tuple[int, int, int, int], width: int, height: int) -> float:
    """Scene complexity varies across the image (center is 3× the edge),
    which is what makes dynamic assignment worthwhile."""
    x0, y0, w, h = job
    cx = (x0 + w / 2) / width - 0.5
    cy = (y0 + h / 2) / height - 0.5
    return 1.0 + 2.0 * (1.0 - min(1.0, 2.0 * (cx * cx + cy * cy) ** 0.5))


def tile_cycles(job: Tuple[int, int, int, int], width: int, height: int,
                cycles_per_pixel: int) -> int:
    """Simulated render cost of one tile."""
    _x0, _y0, w, h = job
    return int(w * h * cycles_per_pixel * tile_complexity(job, width, height))


def reference_image(width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT,
                    tile: int = DEFAULT_TILE) -> int:
    """Sequential reference: the full-image checksum."""
    return sum(render_tile(job) for job in make_tiles(width, height, tile))


@program("apps.povray_master")
def _master(b, *, nworkers, width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT,
            tile=DEFAULT_TILE):
    b.alloc(imm(povray_ballast()), "heap")
    emit_master_init(b, nworkers=nworkers)
    b.op("queue", lambda w=width, h=height, t=tile: make_tiles(w, h, t))
    b.mov("image", imm(0))
    b.mov("outstanding", imm(0))
    # seed every worker with one tile (if enough tiles exist)
    for worker in range(1, nworkers + 1):
        b.op("__have", lambda q: bool(q), "queue")
        with b.if_("__have"):
            b.op("__job", lambda q: q[0], "queue")
            b.op("queue", lambda q: q[1:], "queue")
            emit_pvm_send(b, worker, "__job", tag="job")
            b.op("outstanding", lambda o: o + 1, "outstanding")
    b.op("__pending", lambda q, o: bool(q) or o > 0, "queue", "outstanding")
    with b.while_("__pending"):
        emit_pvm_recv_any(b, "__res", "__who", tag="result")
        b.op("image", lambda acc, r: acc + r, "image", "__res")
        b.op("outstanding", lambda o: o - 1, "outstanding")
        b.op("__more", lambda q: bool(q), "queue")
        with b.if_("__more"):
            b.op("__job", lambda q: q[0], "queue")
            b.op("queue", lambda q: q[1:], "queue")
            emit_pvm_send(b, "__who", "__job", tag="job")
            b.op("outstanding", lambda o: o + 1, "outstanding")
        b.op("__pending", lambda q, o: bool(q) or o > 0, "queue", "outstanding")
    # retire the workers
    b.mov("__stop", imm(None))
    for worker in range(1, nworkers + 1):
        emit_pvm_send(b, worker, "__stop", tag="job")
    b.halt(imm(0))


@program("apps.povray_worker")
def _worker(b, *, task_id, master_vip, width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT,
            cycles_per_pixel=DEFAULT_CYCLES_PER_PIXEL):
    b.alloc(imm(povray_ballast()), "heap")
    emit_worker_init(b, task_id=task_id, master_vip=master_vip)
    b.mov("rendered", imm(0))
    b.mov("__running", imm(True))
    with b.while_("__running"):
        emit_pvm_recv(b, 0, "__job", tag="job")
        b.op("__running", lambda j: j is not None, "__job")
        with b.if_("__running"):
            b.op("__cycles", lambda j, w=width, h=height, c=cycles_per_pixel:
                 tile_cycles(j, w, h, c), "__job")
            b.compute("__cycles")
            b.op("__res", render_tile, "__job")
            emit_pvm_send(b, 0, "__res", tag="result")
            b.op("rendered", lambda n: n + 1, "rendered")
    emit_worker_close(b)
    b.halt(imm(0))


def master_params(*, nworkers: int, width: int = DEFAULT_WIDTH,
                  height: int = DEFAULT_HEIGHT, tile: int = DEFAULT_TILE) -> dict:
    """Master program params for launch_master_worker."""
    return {"nworkers": nworkers, "width": width, "height": height, "tile": tile}


def worker_params(task_id: int, master_vip: str, *, width: int = DEFAULT_WIDTH,
                  height: int = DEFAULT_HEIGHT,
                  cycles_per_pixel: int = DEFAULT_CYCLES_PER_PIXEL) -> dict:
    """Worker program params for launch_master_worker."""
    return {
        "task_id": task_id, "master_vip": master_vip,
        "width": width, "height": height, "cycles_per_pixel": cycles_per_pixel,
    }
