"""PETSc Bratu — the solid-fuel-ignition (SFI) example.

"A scalable package of PDE solvers ... in particular the Bratu (SFI —
solid fuel ignition) example, that uses distributed arrays to partition
the problem grid with a moderate level of communication."

The miniature solves −Δu = λ·eᵘ on the unit square (Dirichlet zero
boundary) by Picard iteration with Jacobi sweeps, on a 1-D strip
decomposition of the grid (PETSc's DA with one dimension distributed).
Each sweep exchanges one halo row with each strip neighbor; each outer
iteration allreduces the residual norm — moderate communication, as
billed.  The update is elementwise, so the distributed solution matches
the sequential reference exactly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..middleware import emit_allreduce, emit_finalize, emit_gather, emit_init, emit_recv, emit_send
from ..vos.program import imm, program
from .common import grid_partition, petsc_ballast

#: default global grid edge.
DEFAULT_GRID = 48
#: Bratu parameter λ (below the fold point, so Picard converges).
DEFAULT_LAMBDA = 4.0
#: outer (Picard) iterations.
DEFAULT_OUTER = 8
#: Jacobi sweeps per outer iteration.
DEFAULT_SWEEPS = 12
#: simulated cycles per grid point per sweep.
DEFAULT_CYCLES_PER_POINT = 120_000


def jacobi_sweep(u: np.ndarray, above: np.ndarray, below: np.ndarray,
                 lam_h2_exp: np.ndarray, interior_rows: slice) -> np.ndarray:
    """One Jacobi sweep of a strip given its two halo rows.

    ``u`` is the strip (rows × G); boundary columns and global boundary
    rows are pinned at zero by the caller's ``interior_rows`` slice.
    """
    padded = np.vstack([above[None, :], u, below[None, :]])
    north = padded[:-2, :]
    south = padded[2:, :]
    west = np.hstack([np.zeros((u.shape[0], 1)), u[:, :-1]])
    east = np.hstack([u[:, 1:], np.zeros((u.shape[0], 1))])
    unew = u.copy()
    update = 0.25 * (north + south + west + east + lam_h2_exp)
    unew[interior_rows, 1:-1] = update[interior_rows, 1:-1]
    return unew


def strip_rows(G: int, nprocs: int, rank: int) -> Tuple[int, int]:
    """Global row range [start, stop) owned by ``rank``."""
    return grid_partition(G, nprocs, rank)


def _interior_slice(start: int, stop: int, G: int) -> slice:
    lo = 1 - start if start == 0 else 0
    hi = (stop - start) - (1 if stop == G else 0)
    return slice(max(lo, 0), hi)


def _lam_h2_exp(u: np.ndarray, lam: float, G: int) -> np.ndarray:
    h = 1.0 / (G - 1)
    return lam * h * h * np.exp(u)


def bratu_strip_iteration(u: np.ndarray, above: np.ndarray, below: np.ndarray,
                          lam: float, G: int, start: int, stop: int) -> np.ndarray:
    """One Jacobi sweep of the Bratu Picard linearization on a strip."""
    rows = _interior_slice(start, stop, G)
    return jacobi_sweep(u, above, below, _lam_h2_exp(u, lam, G), rows)


def local_residual(u_old: np.ndarray, u_new: np.ndarray) -> float:
    """Strip contribution to the squared-residual norm."""
    return float(((u_new - u_old) ** 2).sum())


def reference_bratu(G: int = DEFAULT_GRID, lam: float = DEFAULT_LAMBDA,
                    outer: int = DEFAULT_OUTER, sweeps: int = DEFAULT_SWEEPS
                    ) -> Tuple[float, List[float]]:
    """Sequential reference: (solution checksum, per-outer-step norms)."""
    u = np.zeros((G, G))
    zero = np.zeros(G)
    norms = []
    for _ in range(outer):
        u_prev = u
        for _ in range(sweeps):
            u = bratu_strip_iteration(u, zero, zero, lam, G, 0, G)
        norms.append(np.sqrt(local_residual(u_prev, u)))
    return float(u.sum()), norms


@program("apps.petsc_bratu")
def _bratu(b, *, rank, nprocs, vips, grid=DEFAULT_GRID, lam=DEFAULT_LAMBDA,
           outer=DEFAULT_OUTER, sweeps=DEFAULT_SWEEPS,
           cycles_per_point=DEFAULT_CYCLES_PER_POINT):
    start, stop = strip_rows(grid, nprocs, rank)
    first, last = rank == 0, rank == nprocs - 1

    b.alloc(imm(petsc_ballast(nprocs)), "heap")
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    b.op("u", lambda rows=stop - start, G=grid: np.zeros((rows, G)))
    b.mov("norms", imm([]))
    cycles_per_sweep = (cycles_per_point * grid * grid) // nprocs

    with b.for_range("__outer", imm(0), imm(outer)):
        b.op("__uprev", lambda u: u.copy(), "u")
        with b.for_range("__sweep", imm(0), imm(sweeps)):
            # exchange halo rows with strip neighbors (Dirichlet rows of
            # zeros at the global edges)
            if first:
                b.op("above", lambda G=grid: np.zeros(G))
            else:
                b.op("__up", lambda u: u[0, :].copy(), "u")
                emit_send(b, rank - 1, "__up", tag="b.up")
            if last:
                b.op("below", lambda G=grid: np.zeros(G))
            else:
                b.op("__down", lambda u: u[-1, :].copy(), "u")
                emit_send(b, rank + 1, "__down", tag="b.down")
            if not first:
                emit_recv(b, rank - 1, "above", tag="b.down")
            if not last:
                emit_recv(b, rank + 1, "below", tag="b.up")
            b.op("u", lambda u, a, bl, L=lam, G=grid, s=start, e=stop:
                 bratu_strip_iteration(u, a, bl, L, G, s, e),
                 "u", "above", "below")
            b.compute(imm(cycles_per_sweep))
        b.op("__rsq", local_residual, "__uprev", "u")
        emit_allreduce(b, "__rsq", "__gsq", op="sum", rank=rank, size=nprocs)
        b.op("norms", lambda ns, g: ns + [float(np.sqrt(g))], "norms", "__gsq")

    b.op("__mysum", lambda u: float(u.sum()), "u")
    emit_gather(b, "__mysum", "__sums", rank=rank, size=nprocs)
    if rank == 0:
        b.op("checksum", lambda sums: float(sum(sums)), "__sums")
    else:
        b.mov("checksum", imm(None))
    emit_finalize(b)
    b.halt(imm(0))


def params_of(rank: int, vips, *, nprocs: int, grid: int = DEFAULT_GRID,
              lam: float = DEFAULT_LAMBDA, outer: int = DEFAULT_OUTER,
              sweeps: int = DEFAULT_SWEEPS,
              cycles_per_point: int = DEFAULT_CYCLES_PER_POINT) -> dict:
    """Program params for :func:`repro.middleware.launch_spmd`."""
    return {
        "rank": rank, "nprocs": nprocs, "vips": list(vips), "grid": grid,
        "lam": lam, "outer": outer, "sweeps": sweeps,
        "cycles_per_point": cycles_per_point,
    }
