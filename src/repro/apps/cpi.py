"""CPI — parallel computation of π (the MPICH-2 example program).

"Uses basic MPI primitives and is mostly computationally bound."  The
root broadcasts the interval count, every rank integrates its strided
share of ``4/(1+x²)``, and a sum-reduction assembles π at the root.
"""

from __future__ import annotations

import numpy as np

from ..middleware import emit_bcast, emit_finalize, emit_init, emit_reduce
from ..vos.program import imm, program
from .common import cpi_ballast

#: default problem size: intervals of the midpoint rule.
DEFAULT_INTERVALS = 1_000_000
#: simulated cycles charged per interval (calibrates completion time).
DEFAULT_CYCLES_PER_INTERVAL = 60_000


def partial_pi(n: int, rank: int, nprocs: int) -> float:
    """Rank's share of the midpoint-rule sum (the real numerical core)."""
    h = 1.0 / n
    i = np.arange(rank, n, nprocs, dtype=np.float64)
    x = h * (i + 0.5)
    return float((4.0 / (1.0 + x * x)).sum())


def reference_pi(n: int) -> float:
    """Sequential reference: what the parallel run must reproduce."""
    return sum(partial_pi(n, r, 1) for r in [0]) / n


@program("apps.cpi")
def _cpi(b, *, rank, nprocs, vips, intervals=DEFAULT_INTERVALS,
         cycles_per_interval=DEFAULT_CYCLES_PER_INTERVAL):
    b.alloc(imm(cpi_ballast(nprocs)), "heap")
    emit_init(b, rank=rank, nprocs=nprocs, vips=vips)
    # root knows N; everyone learns it by broadcast (as the real CPI does)
    if rank == 0:
        b.mov("n", imm(intervals))
    else:
        b.mov("n", imm(None))
    emit_bcast(b, "n", rank=rank, size=nprocs)
    # integrate my strided share — real math plus calibrated cycles
    b.op("partial", lambda n, r=rank, p=nprocs: partial_pi(n, r, p), "n")
    b.op("__cycles", lambda n, p=nprocs, c=cycles_per_interval: (n * c) // p, "n")
    b.compute("__cycles")
    emit_reduce(b, "partial", "total", op="sum", rank=rank, size=nprocs)
    if rank == 0:
        b.op("pi", lambda t, n: t / n, "total", "n")
    else:
        b.mov("pi", imm(None))
    emit_finalize(b)
    b.halt(imm(0))


def params_of(rank: int, vips, *, nprocs: int, intervals: int = DEFAULT_INTERVALS,
              cycles_per_interval: int = DEFAULT_CYCLES_PER_INTERVAL) -> dict:
    """Program params for :func:`repro.middleware.launch_spmd`."""
    return {
        "rank": rank,
        "nprocs": nprocs,
        "vips": list(vips),
        "intervals": intervals,
        "cycles_per_interval": cycles_per_interval,
    }
