"""Shared pieces of the evaluation applications.

Each application models its paper counterpart along three axes:

* **real computation** — a scaled-down numerical core (numpy) whose
  result is deterministic and machine-checkable, so checkpoint-restart
  correctness is verified by *answers*, not just by liveness;
* **simulated computation** — explicit ``compute`` cycles calibrating
  completion times to the paper's scale (the real core is orders of
  magnitude smaller than the real application);
* **accounted memory** — per-rank resident-set ballast following the
  paper's Figure 6(c) footprints (working set splits across ranks for
  CPI/PETSc/BT, constant for POV-Ray).
"""

from __future__ import annotations

#: Per-rank resident-set models, bytes, as functions of the world size.
#: Derived from Figure 6(c): largest-pod image ≈ base + share/n.
MB = 1_000_000


def cpi_ballast(nprocs: int) -> int:
    """CPI: 16 MB at 1 node → 7 MB at 16 nodes."""
    return 6 * MB + (10 * MB) // nprocs


def petsc_ballast(nprocs: int) -> int:
    """PETSc: 145 MB at 1 node → 24 MB at 16 nodes."""
    return 16 * MB + (129 * MB) // nprocs


def btnas_ballast(nprocs: int) -> int:
    """BT/NAS: 340 MB at 1 node → 35 MB at 16 nodes."""
    return 15 * MB + (325 * MB) // nprocs


def povray_ballast() -> int:
    """POV-Ray: roughly constant ≈ 10 MB per worker."""
    return 10 * MB


def grid_partition(n: int, parts: int, index: int) -> tuple:
    """Contiguous 1-D block partition: (start, stop) of block ``index``."""
    base, extra = divmod(n, parts)
    start = index * base + min(index, extra)
    stop = start + base + (1 if index < extra else 0)
    return start, stop
