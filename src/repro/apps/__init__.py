"""The four evaluation workloads of the paper's Section 6."""

from . import btnas, cpi, petsc_bratu, povray
from .common import btnas_ballast, cpi_ballast, petsc_ballast, povray_ballast

__all__ = [
    "btnas",
    "btnas_ballast",
    "cpi",
    "cpi_ballast",
    "petsc_ballast",
    "petsc_bratu",
    "povray",
    "povray_ballast",
]
