#!/usr/bin/env python3
"""Live migration: move a running BT/NAS job onto different blades.

Four BT/NAS ranks run on blades 0–3; mid-run the whole application is
migrated onto blades 4–5 — N=4 source nodes onto M=2 destination nodes
(pods are independent units of migration), with checkpoint data streamed
agent-to-agent, never touching storage.  The solve finishes on the new
blades with a bit-checked answer.

Run:  python examples/live_migration.py
"""

from repro.apps import btnas
from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.middleware import launch_spmd

NPROCS = 4
KW = dict(grid=48, iters=30, cycles_per_point=120_000, face_pad=32_768)


def main() -> None:
    cluster = Cluster.build(6, ncpus=2, seed=21)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.btnas", NPROCS,
        lambda rank, vips: btnas.params_of(rank, vips, nprocs=NPROCS, **KW),
        name="bt", nodes=[0, 1, 2, 3])
    print(f"BT/NAS running on blades 0-3, pods {handle.pod_ids}")

    holder = {}

    def kick():
        # N=4 pods consolidate onto M=2 dual-CPU blades (4 and 5)
        moves = [(cluster.node_of_pod(pid).name, pid, f"blade{4 + i // 2}")
                 for i, pid in enumerate(handle.pod_ids)]
        print(f"\nmigrating at t={cluster.engine.now:.2f}s:")
        for src, pod, dst in moves:
            print(f"  {pod}: {src} -> {dst}")
        holder["mig"] = migrate(manager, moves, redirect=True)

    cluster.engine.schedule(1.0, kick)
    cluster.engine.run(until=600.0)

    mig = holder["mig"].finished.result
    assert mig.ok, (mig.checkpoint.errors, mig.restart.errors)
    print(f"\nmigration done in {mig.duration * 1000:.0f} ms simulated "
          f"(checkpoint {mig.checkpoint.duration * 1000:.0f} ms + "
          f"restart {mig.restart.duration * 1000:.0f} ms)")
    for i in (4, 5):
        pods = sorted(cluster.node(i).kernel.pods)
        print(f"  blade{i} now hosts: {pods}")

    assert handle.ok(cluster)
    ref_sum, _ = btnas.reference_btnas(G=KW["grid"], iters=KW["iters"])
    (checksum,) = [v for v in handle.results(cluster, "checksum") if v is not None]
    print(f"\nBT/NAS checksum {checksum:.9f} == sequential reference {ref_sum:.9f}: "
          f"{abs(checksum - ref_sum) < 1e-9}")


if __name__ == "__main__":
    main()
