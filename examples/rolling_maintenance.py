#!/usr/bin/env python3
"""Rolling maintenance: drain each blade in turn while the job runs.

The paper's administration use case: "improved service availability and
administration by checkpointing applications processes before cluster
node maintenance and restarting them on other cluster nodes so that
applications can continue to run with minimal downtime."

A PETSc Bratu job runs on blades 0–3 with blade 4 as the spare.  One at
a time, each busy blade is drained (its pod live-migrates to the spare),
"serviced", and becomes the new spare.  The job keeps computing through
all four maintenance windows and finishes with a verified answer.

Run:  python examples/rolling_maintenance.py
"""

from repro.apps import petsc_bratu
from repro.cluster import Cluster
from repro.core import Manager, migrate_task
from repro.middleware import launch_spmd

NPROCS = 4
KW = dict(grid=48, outer=8, sweeps=12, cycles_per_point=400_000)


def main() -> None:
    cluster = Cluster.build(5, seed=29)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.petsc_bratu", NPROCS,
        lambda rank, vips: petsc_bratu.params_of(rank, vips, nprocs=NPROCS, **KW),
        name="bratu", nodes=[0, 1, 2, 3])
    print(f"Bratu on blades 0-3; blade 4 is the maintenance spare\n")

    downtime = []

    def maintenance():
        spare = 4
        for blade in range(4):
            yield cluster.engine.sleep(0.8)
            if handle.ok(cluster):
                break
            # find the pod currently on this blade
            pods_here = [pid for pid in handle.pod_ids
                         if cluster.node_of_pod(pid).index == blade]
            if not pods_here:
                continue
            (pod_id,) = pods_here
            # the whole application migrates together; only this pod moves
            moves = []
            for pid in handle.pod_ids:
                src = cluster.node_of_pod(pid).name
                dst = f"blade{spare}" if pid == pod_id else src
                moves.append((src, pid, dst))
            t0 = cluster.engine.now
            result = yield from migrate_task(manager, moves)
            assert result.ok
            downtime.append(result.duration)
            print(f"  t={cluster.engine.now:5.2f}s drained blade{blade} "
                  f"({pod_id} -> blade{spare}, pause {result.duration * 1000:.0f} ms); "
                  f"blade{blade} under maintenance")
            spare = blade  # the drained blade becomes the next spare

    cluster.engine.spawn(maintenance(), name="maintenance")
    cluster.engine.run(until=600.0)

    assert handle.ok(cluster), "the job did not survive maintenance"
    ref_sum, _ = petsc_bratu.reference_bratu(G=KW["grid"], outer=KW["outer"],
                                             sweeps=KW["sweeps"])
    (checksum,) = [v for v in handle.results(cluster, "checksum") if v is not None]
    print(f"\nall four blades serviced; job finished correctly "
          f"(checksum match: {abs(checksum - ref_sum) < 1e-9})")
    print(f"application pause per maintenance window: "
          f"{min(downtime) * 1000:.0f}-{max(downtime) * 1000:.0f} ms")


if __name__ == "__main__":
    main()
