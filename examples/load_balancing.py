#!/usr/bin/env python3
"""Dynamic load balancing: migrate a pod off an overloaded blade.

Two CPI endpoints start crowded onto one uniprocessor blade (they share
its single CPU) while another blade idles.  Mid-run, one pod migrates to
the idle blade; completion time drops accordingly.  A control run
without the migration shows the difference.

Run:  python examples/load_balancing.py
"""

from repro.apps import cpi
from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.middleware import launch_spmd

NPROCS = 2
KW = dict(intervals=1_000_000, cycles_per_interval=30_000)


def run(migrate_at: float = None) -> float:
    cluster = Cluster.build(2, seed=5)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.cpi", NPROCS,
        lambda rank, vips: cpi.params_of(rank, vips, nprocs=NPROCS, **KW),
        name="cpi", nodes=[0, 0])  # both pods crowd blade0

    if migrate_at is not None:
        def kick():
            print(f"  t={cluster.engine.now:.2f}s: migrating {handle.pod_ids[1]} "
                  f"to the idle blade1")
            # a migration is always a coordinated operation on the whole
            # application (the restart scheme controls both ends of every
            # connection); here one pod stays in place, one moves
            migrate(manager, [
                ("blade0", handle.pod_ids[0], "blade0"),
                ("blade0", handle.pod_ids[1], "blade1"),
            ])

        cluster.engine.schedule(migrate_at, kick)

    cluster.engine.run(until=600.0)
    assert handle.ok(cluster)
    times = []
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "middleware.daemon" and proc.exit_code == 0:
                times.append(proc.exit_time)
    return max(times)


def main() -> None:
    print("control: both pods share blade0's single CPU for the whole run")
    t_crowded = run(migrate_at=None)
    print(f"  completion: {t_crowded:.2f} s\n")

    print("balanced: one pod migrates to idle blade1 early in the run")
    t_balanced = run(migrate_at=0.5)
    print(f"  completion: {t_balanced:.2f} s\n")

    print(f"speedup from one live migration: {t_crowded / t_balanced:.2f}x")
    assert t_balanced < t_crowded


if __name__ == "__main__":
    main()
