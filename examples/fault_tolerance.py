#!/usr/bin/env python3
"""Fault tolerance: recover a distributed job after a node crash.

The PETSc Bratu solver runs on blades 1–2 while a background policy
checkpoints it to shared storage every half second.  Then blade 1
fail-stops.  Recovery restarts *both* pods (the whole application rolls
back to the last consistent cut) from the SAN images onto healthy
blades, and the solve completes with the right answer.

Run:  python examples/fault_tolerance.py
"""

from repro.apps import petsc_bratu
from repro.cluster import Cluster, crash_node
from repro.core import Manager
from repro.middleware import checkpoint_targets, launch_spmd

NPROCS = 2
KW = dict(grid=48, outer=8, sweeps=12, cycles_per_point=200_000)
CKPT_PERIOD = 0.5


def main() -> None:
    cluster = Cluster.build(4, seed=13)
    manager = Manager.deploy(cluster)
    handle = launch_spmd(
        cluster, "apps.petsc_bratu", NPROCS,
        lambda rank, vips: petsc_bratu.params_of(rank, vips, nprocs=NPROCS, **KW),
        name="bratu", nodes=[1, 2])
    print(f"Bratu solver on blades 1-2, pods {handle.pod_ids}")

    taken = []

    def policy():
        """Periodic checkpoint policy (a host task)."""
        while True:
            yield cluster.engine.sleep(CKPT_PERIOD)
            if handle.ok(cluster):
                return
            try:
                targets = checkpoint_targets(
                    handle, cluster, uri="file:/san/bratu-{}.img")
                targets = [(n, p, f"file:/san/{p}.img") for n, p, _ in targets]
            except Exception:
                return  # pods gone (crash window); recovery takes over
            result = yield from manager.checkpoint_task(targets)
            if result.ok:
                taken.append(cluster.engine.now)
                print(f"  t={cluster.engine.now:5.2f}s checkpoint #{len(taken)} "
                      f"({result.duration * 1000:.0f} ms)")

    cluster.engine.spawn(policy(), name="ckpt-policy")

    def crash_and_recover():
        print(f"\nt={cluster.engine.now:.2f}s: blade1 crashes (fail-stop)")
        crash_node(cluster, cluster.node(1))
        # the surviving pod is part of the same consistent cut: stop it too
        try:
            cluster.find_pod("bratu-1").destroy()
        except Exception:
            pass
        print("restarting both pods from the last SAN checkpoint on blades 0 and 3")
        manager.restart([
            ("blade0", "bratu-0", "file:/san/bratu-0.img"),
            ("blade3", "bratu-1", "file:/san/bratu-1.img"),
        ])

    cluster.engine.schedule(1.3, crash_and_recover)
    cluster.engine.run(until=600.0)

    assert handle.ok(cluster), "application did not recover"
    ref_sum, _ = petsc_bratu.reference_bratu(G=KW["grid"], outer=KW["outer"],
                                             sweeps=KW["sweeps"])
    (checksum,) = [v for v in handle.results(cluster, "checksum") if v is not None]
    print(f"\nrecovered and finished: checksum {checksum:.9f} "
          f"(reference {ref_sum:.9f}, match={abs(checksum - ref_sum) < 1e-9})")
    print(f"work lost to the crash: only what ran after the last checkpoint "
          f"at t={taken[-1]:.2f}s")


if __name__ == "__main__":
    main()
