#!/usr/bin/env python3
"""Quickstart: checkpoint an unmodified MPI application mid-run.

Builds a four-blade cluster, launches the CPI application (parallel π)
with one pod per endpoint, takes a coordinated snapshot while it runs,
lets it finish, and verifies the answer.  The application knows nothing
about checkpointing — that is the point.

Run:  python examples/quickstart.py
"""

import math

from repro.apps import cpi
from repro.cluster import Cluster
from repro.core import Manager
from repro.middleware import checkpoint_targets, launch_spmd

NPROCS = 4


def main() -> None:
    # 1. a cluster of four uniprocessor blades, agents on every node
    cluster = Cluster.build(NPROCS, seed=7)
    manager = Manager.deploy(cluster)

    # 2. launch CPI: one pod (and one mpd-style daemon) per endpoint
    handle = launch_spmd(
        cluster, "apps.cpi", NPROCS,
        lambda rank, vips: cpi.params_of(rank, vips, nprocs=NPROCS),
        name="cpi")
    print(f"launched CPI on {NPROCS} pods: {handle.pod_ids}")

    # 3. snapshot the whole application 300 ms into the (simulated) run
    holder = {}

    def take_snapshot():
        holder["task"] = manager.checkpoint(checkpoint_targets(handle, cluster))

    cluster.engine.schedule(0.3, take_snapshot)

    # 4. run the simulation to completion
    cluster.engine.run(until=600.0)

    result = holder["task"].finished.result
    assert result.ok, result.errors
    print(f"\ncoordinated checkpoint completed in {result.duration * 1000:.0f} ms "
          f"(simulated time)")
    for pod_id, stats in sorted(result.pods.items()):
        print(f"  {pod_id}: image {stats['image_bytes'] / 1e6:5.1f} MB, "
              f"network state {stats['netstate_bytes']} B "
              f"({stats['t_network'] * 1000:.1f} ms of {stats['t_local'] * 1000:.0f} ms)")

    # 5. the application still computed the right answer
    assert handle.ok(cluster)
    (pi_val,) = [v for v in handle.results(cluster, "pi") if v is not None]
    print(f"\nCPI result: π ≈ {pi_val:.12f} (error {abs(pi_val - math.pi):.2e})")
    print("the snapshot was completely transparent to the application")


if __name__ == "__main__":
    main()
