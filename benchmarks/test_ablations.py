"""Design ablations: each measures one design choice the paper argues for.

* **sync position** — saving network state first overlaps the Manager's
  single synchronization with the standalone capture; the serialized
  variant exposes the sync latency in the checkpoint total.
* **send-queue redirect** — migrating a deep send queue inside the
  peer's checkpoint stream avoids transmitting it twice.
* **peek capture** — the Cruz-style receive-queue peek silently loses
  urgent data that the ZapC read-and-reinject capture preserves.
* **two-thread recovery** — connect/accept in one sequential thread
  deadlocks on a ring topology; ZapC's two threads restore it.
* **time virtualization** — rebasing the virtual clock keeps
  application-level timeout layers from tripping across the gap.
"""


from repro.baselines import deploy_peek_manager
from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.scenarios import launch_oob_probe, launch_queue_pair, launch_ring
from repro.vos import DEAD, build_program


# ---------------------------------------------------------------------------
# sync position (§4 ordering argument)
# ---------------------------------------------------------------------------


def _ckpt_duration(order: str) -> float:
    from repro.harness import APPS, build_cluster
    from repro.middleware.daemon import checkpoint_targets

    cluster = build_cluster(4, seed=2)
    manager = Manager.deploy(cluster)
    handle = APPS["PETSc"].launch_pods(cluster, 4, 1.0)
    out = {}

    def orchestrate():
        yield cluster.engine.sleep(0.4)
        result = yield from manager.checkpoint_task(
            checkpoint_targets(handle, cluster), order=order)
        out["result"] = result

    cluster.engine.spawn(orchestrate(), name="abl")
    cluster.engine.run(until=600.0)
    assert out["result"].ok, out["result"].errors
    assert handle.ok(cluster)
    return out["result"].duration


def test_ablation_sync_position(benchmark, report):
    def run():
        return _ckpt_duration("net-first"), _ckpt_duration("standalone-first")

    net_first, standalone_first = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("sync-position", "net-first", "checkpoint [ms]",
                         f"{net_first * 1000:.1f}"))
    report("ablations", ("sync-position", "standalone-first", "checkpoint [ms]",
                         f"{standalone_first * 1000:.1f}"))
    # overlapping the sync with the standalone capture must not be slower
    assert net_first <= standalone_first + 1e-9


# ---------------------------------------------------------------------------
# send-queue redirect (§5 migration optimization)
# ---------------------------------------------------------------------------


def _migrate_queues(redirect: bool):
    cluster = Cluster.build(4, seed=2)
    manager = Manager.deploy(cluster)
    launch_queue_pair(cluster, chunks=120, chunk_bytes=4096)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "q-rx", "blade2"),
            ("blade1", "q-tx", "blade3"),
        ], redirect=redirect)

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=600.0)
    mig = holder["mig"].finished.result
    assert mig.ok
    # everything delivered correctly?
    done = [p for n in cluster.nodes for p in n.kernel.procs.values()
            if p.program.name == "scenario.queue-receiver" and p.exit_code == 0]
    assert done, "receiver did not finish"
    tx_bytes = sum(n.stack.nic.tx_bytes for n in cluster.nodes)
    return mig, tx_bytes


def test_ablation_send_queue_redirect(benchmark, report):
    def run():
        return _migrate_queues(False), _migrate_queues(True)

    (plain, plain_bytes), (redir, redir_bytes) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report("ablations", ("send-queue-redirect", "re-send", "fabric bytes",
                         f"{plain_bytes}"))
    report("ablations", ("send-queue-redirect", "redirect", "fabric bytes",
                         f"{redir_bytes}"))
    # merging the send queue into the peer's stream saves a transfer
    assert redir_bytes < plain_bytes


# ---------------------------------------------------------------------------
# peek vs read-and-reinject capture (§2/§5 Cruz comparison)
# ---------------------------------------------------------------------------


def _oob_outcome(use_peek: bool) -> bool:
    cluster = Cluster.build(4, seed=11)
    manager = deploy_peek_manager(cluster) if use_peek else Manager.deploy(cluster)
    launch_oob_probe(cluster)
    holder = {}

    def kick():
        holder["mig"] = migrate(manager, [
            ("blade0", "oob-rx", "blade2"),
            ("blade1", "oob-tx", "blade3"),
        ])

    cluster.engine.schedule(1.0, kick)
    cluster.engine.run(until=300.0)
    assert holder["mig"].finished.result.ok
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "scenario.oob-receiver" and proc.exit_code == 0 \
                    and "urgent" in proc.regs:
                return proc.regs["urgent"] == b"!"
    raise AssertionError("no restored receiver found")


def test_ablation_peek_loses_urgent_data(benchmark, report):
    def run():
        return _oob_outcome(False), _oob_outcome(True)

    zapc_ok, peek_ok = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("capture-method", "zapc read+reinject", "urgent data intact", zapc_ok))
    report("ablations", ("capture-method", "cruz peek", "urgent data intact", peek_ok))
    assert zapc_ok and not peek_ok


# ---------------------------------------------------------------------------
# two-thread connectivity recovery (§4 deadlock argument)
# ---------------------------------------------------------------------------


def _ring_recovery(mode: str):
    K = 4
    cluster = Cluster.build(2 * K, seed=5)
    manager = Manager.deploy(cluster)
    launch_ring(cluster, K, laps=40)
    holder = {}

    def kick():
        holder["mig"] = migrate(
            manager,
            [(f"blade{i}", f"ring{i}", f"blade{K + i}") for i in range(K)],
            recovery_mode=mode, deadline=10.0)

    cluster.engine.schedule(0.05, kick)
    cluster.engine.run(until=300.0)
    return holder["mig"].finished.result


def test_ablation_two_thread_recovery(benchmark, report):
    def run():
        return _ring_recovery("two-thread"), _ring_recovery("sequential")

    two_thread, sequential = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("connectivity-recovery", "two-thread", "ring restart",
                         two_thread.restart.status))
    report("ablations", ("connectivity-recovery", "sequential", "ring restart",
                         sequential.restart.status))
    assert two_thread.ok
    assert sequential.restart.status == "timeout"  # the deadlock


# ---------------------------------------------------------------------------
# time virtualization (§5)
# ---------------------------------------------------------------------------


def _heartbeat_expired(virtualized: bool) -> bool:
    cluster = Cluster.build(2, seed=3)
    manager = Manager.deploy(cluster)
    cluster.create_pod(cluster.node(0), "hb")
    cluster.node(0).kernel.spawn(
        build_program("scenario.heartbeat", threshold=5.0), pod_id="hb")
    holder = {}
    cluster.engine.schedule(0.5, lambda: holder.update(
        c=manager.checkpoint([("blade0", "hb", "mem")])))
    cluster.engine.schedule(0.8, lambda: cluster.find_pod("hb").destroy())
    cluster.engine.schedule(10.5, lambda: holder.update(
        r=manager.restart([("blade0", "hb", "mem")],
                          time_virtualization=virtualized)))
    cluster.engine.run(until=120.0)
    assert holder["r"].finished.result.ok
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "scenario.heartbeat" and proc.state == DEAD \
                    and proc.exit_code == 0:
                return bool(proc.regs["expired"])
    raise AssertionError("heartbeat app never completed")


def test_ablation_time_virtualization(benchmark, report):
    def run():
        return _heartbeat_expired(True), _heartbeat_expired(False)

    with_virt, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("time-virtualization", "on", "timeout tripped", with_virt))
    report("ablations", ("time-virtualization", "off", "timeout tripped", without))
    assert not with_virt and without
