"""Figure 5 — virtualization overhead.

Regenerates the completion-time comparison between vanilla (Base) and
ZapC (pods) for all four applications across the paper's node counts.
The paper's finding: completion times "almost indistinguishable", with
pod overhead well inside run-to-run variation, and unimpaired speedup.
"""

import pytest

from repro.harness import APPS, run_fig5_row

from .conftest import SCALE

CELLS = [(app, n) for app, spec in APPS.items() for n in spec.node_counts]


@pytest.mark.parametrize("app,nodes", CELLS, ids=[f"{a}-{n}" for a, n in CELLS])
def test_fig5_cell(benchmark, report, app, nodes):
    cell = benchmark.pedantic(run_fig5_row, args=(app, nodes),
                              kwargs={"scale": SCALE}, rounds=1, iterations=1)
    benchmark.extra_info.update(
        base_s=cell.base_time, zapc_s=cell.zapc_time, overhead_pct=cell.overhead_pct)
    report("fig5", (app, nodes, f"{cell.base_time:.3f}", f"{cell.zapc_time:.3f}",
                    f"{cell.overhead_pct:.4f}"))
    # the paper's claim: negligible overhead
    assert cell.zapc_time >= cell.base_time  # interposition can't speed things up
    assert cell.overhead_pct < 1.0


@pytest.mark.parametrize("app", list(APPS))
def test_fig5_speedup_preserved(benchmark, app):
    """Relative speedup must be essentially identical for Base and ZapC
    (the scalability claim)."""
    spec = APPS[app]
    small, large = spec.node_counts[0], spec.node_counts[-2]

    def run():
        rows = [run_fig5_row(app, n, scale=SCALE) for n in (small, large)]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_speedup = rows[0].base_time / rows[1].base_time
    zapc_speedup = rows[0].zapc_time / rows[1].zapc_time
    assert zapc_speedup == pytest.approx(base_speedup, rel=0.01)
    assert base_speedup > 1.5  # the workload really does scale
