"""Benchmark package (figure regeneration)."""
