"""Incremental generations — dirty-delta image shrink and the
zero-stall suspend window.

Not a paper figure: the PR's dirty-delta / async-pipeline study.  One
writing workload (2 pods × 64 MB ballast, 8 MB/s writes) is snapshotted
four epochs under each pipeline mode.  The claims:

* with measured dirty tracking, every epoch ≥ 1 image is ≥ 5× smaller
  than a full image (the heuristic-delta fallback manages only its
  fixed assumed-dirty fraction),
* the zero-stall path cuts the pod suspend window ≥ 3× against serial
  incremental checkpoints — while the committed chain still reassembles
  byte-identical to the full base (``chain_ok``),
* a rolling fleet wave can run the same configuration end to end.
"""

import pytest

from repro.fleet import FLEET_TIMEOUTS, FleetPolicy, build_fleet_world
from repro.fleet.drain import checkpoint_fleet_task
from repro.harness import INC_MODES, run_inc_cell

from .conftest import SCALE  # noqa: F401  (cells run at fixed workload scale)

_cells = {}


@pytest.mark.parametrize("mode", list(INC_MODES), ids=list(INC_MODES))
def test_generations_by_mode(benchmark, report, bench_json, mode):
    cell = benchmark.pedantic(run_inc_cell, args=(mode,), rounds=1,
                              iterations=1)
    _cells[mode] = cell
    benchmark.extra_info.update(
        epoch0_mb=cell.epoch0_image_size / 1e6,
        steady_mb=cell.steady_state_image_size / 1e6,
        suspend_ms=cell.mean_suspend * 1000)
    metrics = {f"gen{i}_mb": size / 1e6
               for i, size in enumerate(cell.image_sizes)}
    bench_json(f"inc/{mode}",
               suspend_ms=cell.mean_suspend * 1000,
               ckpt_ms=cell.mean_checkpoint * 1000,
               **metrics)
    report("inc", (mode,
                   f"{cell.epoch0_image_size / 1e6:.1f}",
                   f"{cell.steady_state_image_size / 1e6:.2f}",
                   f"{cell.mean_suspend * 1000:.1f}",
                   f"{cell.mean_checkpoint * 1000:.1f}",
                   "ok" if cell.chain_ok else "BROKEN"))
    assert cell.chain_ok
    assert len(cell.image_sizes) == 4
    full = _cells.get("full")
    if mode in ("delta", "delta-async") and full is not None:
        # acceptance: epoch ≥ 1 dirty-delta images ≥ 5× smaller than full
        for size in cell.image_sizes[1:]:
            assert size * 5 <= full.steady_state_image_size
    if mode == "delta-async" and "delta" in _cells:
        # acceptance: async cuts the suspend window ≥ 3× vs serial
        assert cell.mean_suspend * 3 <= _cells["delta"].mean_suspend


def _run_inc_wave():
    cluster, manager, pods = build_fleet_world(12, 48, seed=0)
    policy = FleetPolicy(max_inflight=8, filters=[{"name": "delta"}],
                         async_ckpt=True)
    state = {}

    def driver():
        state["result"] = yield from checkpoint_fleet_task(
            manager, policy=policy, timeouts=FLEET_TIMEOUTS)

    cluster.engine.spawn(driver(), name="inc-wave")
    cluster.engine.run(until=3600.0)
    return state["result"]


def test_fleet_incremental_wave(benchmark, report, bench_json):
    """A rolling zero-stall incremental checkpoint wave over 48 pods."""
    res = benchmark.pedantic(_run_inc_wave, rounds=1, iterations=1)
    counts = res.counts()
    benchmark.extra_info.update(campaign_s=res.duration,
                                p99_downtime_s=res.downtime_percentile(99))
    bench_json("fleet/inc-wave",
               campaign_ms=res.duration * 1000,
               waves=len(res.waves),
               p50_downtime_ms=res.downtime_percentile(50) * 1000,
               p99_downtime_ms=res.downtime_percentile(99) * 1000,
               pods_ok=counts["ok"])
    report("fleet", ("inc-wave", len(res.waves),
                     f"{res.duration:.3f}",
                     f"{res.downtime_percentile(50) * 1000:.1f}",
                     f"{res.downtime_percentile(99) * 1000:.1f}",
                     f"{counts['ok']}/{len(res.pods)}"))
    assert res.status == "ok"
    assert counts == {"ok": 48, "failed": 0, "skipped": 0}
