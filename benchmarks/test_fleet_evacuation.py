"""Fleet evacuation — campaign time and downtime by in-flight cap.

Not a paper figure: rolling waves over the paper's per-pod checkpoint
and migrate ops.  A fixed fleet (24 blades, 96 idle pods, 18 blades
evacuated) drains under increasing concurrency caps.  The claims:

* the campaign's simulated makespan shrinks roughly linearly with the
  in-flight cap (waves are the only serialization),
* per-pod downtime stays flat — bounding concurrency trades campaign
  duration, never outage length,
* every pod lands off the evacuated set regardless of cap.
"""

import pytest

from repro.fleet import run_evacuation_demo

from .conftest import SCALE  # noqa: F401  (cells run at fixed fleet scale)

CAPS = (1, 4, 16)


def _run_cell(cap):
    return run_evacuation_demo(n_nodes=24, n_pods=96, n_evacuate=18,
                               seed=0, max_inflight=cap)


@pytest.mark.parametrize("cap", CAPS, ids=[f"inflight-{c}" for c in CAPS])
def test_evacuation_vs_inflight(benchmark, report, bench_json, cap):
    out = benchmark.pedantic(_run_cell, args=(cap,), rounds=1, iterations=1)
    res = out["result"]
    counts = res.counts()
    benchmark.extra_info.update(
        campaign_s=res.duration, waves=len(res.waves),
        p99_downtime_s=res.downtime_percentile(99),
        peak_inflight=res.peak_inflight)
    bench_json(f"fleet/inflight-{cap}",
               campaign_ms=res.duration * 1000,
               waves=len(res.waves),
               p50_downtime_ms=res.downtime_percentile(50) * 1000,
               p99_downtime_ms=res.downtime_percentile(99) * 1000,
               pods_ok=counts["ok"])
    report("fleet", (cap, len(res.waves),
                     f"{res.duration:.3f}",
                     f"{res.downtime_percentile(50) * 1000:.1f}",
                     f"{res.downtime_percentile(99) * 1000:.1f}",
                     f"{counts['ok']}/{len(res.pods)}"))
    assert res.status == "ok"
    assert counts == {"ok": 96, "failed": 0, "skipped": 0}
    assert res.peak_inflight <= cap
    cluster = out["cluster"]
    for name in out["evacuated"]:
        assert not cluster.node_by_name(name).kernel.pods
    # downtime is a property of one pod's move, not of the cap
    base = _run_cell(1)["result"]
    assert res.downtime_percentile(99) == \
        pytest.approx(base.downtime_percentile(99), rel=0.05)
    if cap > 1:
        # makespan scales down with concurrency (waves only serialize)
        assert res.duration * (cap / 2) <= base.duration
