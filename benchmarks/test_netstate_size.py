"""In-text claim — network-state size.

"The size of the network-state data was only a few kilobytes for all of
the applications.  For instance in the case of CPI, the network-state
data saved as part of the checkpoint ranged from 216 bytes to 2 KB."
"""

import pytest

from repro.harness import run_fig6_cell

from .conftest import SCALE


@pytest.mark.parametrize("nodes", [1, 2, 4, 8, 16])
def test_cpi_netstate_is_bytes_to_kilobytes(benchmark, report, nodes):
    cell = benchmark.pedantic(run_fig6_cell, args=("CPI", nodes),
                              kwargs={"scale": SCALE, "n_checkpoints": 5},
                              rounds=1, iterations=1)
    low = min(cell.netstate_sizes)
    high = max(cell.netstate_sizes)
    benchmark.extra_info.update(netstate_min=low, netstate_max=high)
    report("ablations", ("netstate-size", f"CPI n={nodes}", "bytes", f"{low}–{high}"))
    assert high < 16_384, "CPI network state must stay in the KB range"


@pytest.mark.parametrize("app", ["BT/NAS", "PETSc", "POV-Ray"])
def test_netstate_orders_of_magnitude_below_image(benchmark, report, app):
    cell = benchmark.pedantic(run_fig6_cell, args=(app, 4),
                              kwargs={"scale": SCALE, "n_checkpoints": 5},
                              rounds=1, iterations=1)
    ratio = cell.mean_image_size / max(cell.max_netstate, 1)
    report("ablations", ("netstate-vs-image", app, "image/netstate ratio", f"{ratio:.0f}x"))
    assert ratio > 100
