"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark runs one experiment cell through the harness (simulated
time is deterministic; wall time measures simulator cost) and appends a
paper-style row to a session report printed at the end of the run.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from time import perf_counter

import pytest

#: simulated-duration scale for benchmark runs (1.0 = paper-scale
#: durations; image sizes and network volumes are unaffected by scale).
SCALE = 1.0

#: suite name for the committed perf-trajectory file (BENCH_<suite>.json).
BENCH_SUITE = "core"

_reports = defaultdict(list)
_bench_metrics = {}
#: wall seconds per cell (simulator cost) — nondeterministic, so it is
#: written to a ``.wall.json`` sidecar, never into BENCH_<suite>.json
#: itself (CI byte-diffs the main file against the committed copy).
_bench_wall = {}


@pytest.fixture
def report():
    """Append rows as (table-name, row-tuple); printed at session end."""

    def add(table: str, row: tuple) -> None:
        _reports[table].append(row)

    return add


@pytest.fixture
def bench_json():
    """Record one cell of the BENCH_<suite>.json perf trajectory.

    Only *simulated*-time metrics belong here: they are deterministic,
    so the emitted file is byte-stable and CI can diff a regenerated
    copy against the committed one to gate hot-path regressions
    (ROADMAP item 3).  Set ``BENCH_JSON=<path>`` to write the file at
    session end.

    Each ``add`` also records the cell's *wall* cost (real seconds from
    fixture setup to the call — what the simulation cost to run) into
    the ``<BENCH_JSON>.wall.json`` sidecar, seeding the wall-time
    trajectory without touching the byte-stable main file.
    """
    t0 = perf_counter()

    def add(key: str, **metrics) -> None:
        _bench_metrics[key] = {
            k: (round(v, 6) if isinstance(v, float) else v)
            for k, v in sorted(metrics.items())
        }
        _bench_wall[key] = round(perf_counter() - t0, 6)

    return add


def pytest_sessionfinish(session, exitstatus):
    from repro.metrics import print_table

    headers = {
        "fig5": ("app", "nodes", "base [s]", "zapc [s]", "overhead [%]"),
        "fig6a": ("app", "nodes", "checkpoints", "mean ckpt [ms]", "net ckpt [ms]", "net share [%]"),
        "fig6b": ("app", "nodes", "restart [ms]", "net restore [ms]"),
        "fig6c": ("app", "nodes", "largest pod image [MB]", "network state [KB]"),
        "livemig": ("round cap", "rounds run", "downtime [ms]", "total [ms]",
                    "downtime [%]", "bailout"),
        "fleet": ("max inflight", "waves", "campaign [s]",
                  "p50 downtime [ms]", "p99 downtime [ms]", "pods ok"),
        "inc": ("mode", "epoch0 [MB]", "steady [MB]", "suspend [ms]",
                "ckpt [ms]", "chain"),
        "cas": ("cell", "logical [MB]", "stored [MB]", "dedup", "gc [MB]",
                "restore"),
        "ablations": ("experiment", "variant", "metric", "value"),
    }
    titles = {
        "fig5": "Figure 5 — completion times, vanilla (Base) vs ZapC",
        "fig6a": "Figure 6(a) — average checkpoint time (10 evenly spaced checkpoints)",
        "fig6b": "Figure 6(b) — restart time from a mid-execution image",
        "fig6c": "Figure 6(c) — average checkpoint image size (largest pod)",
        "livemig": "Live migration — downtime vs pre-copy rounds "
                   "(256 MB pod, 40 MB/s writes)",
        "fleet": "Fleet evacuation — 18 of 24 blades, 96 pods, "
                 "by in-flight cap",
        "inc": "Incremental generations — 2 writer pods, 64 MB ballast, "
               "8 MB/s writes",
        "cas": "Content-addressed store — dedup vs full images, "
               "cross-pod sharing, GC reclaim",
        "ablations": "Design ablations",
    }
    for name in ("fig5", "fig6a", "fig6b", "fig6c", "livemig", "fleet",
                 "inc", "cas", "ablations"):
        rows = _reports.get(name)
        if rows:
            print()
            print_table(titles[name], headers[name], sorted(rows, key=lambda r: (str(r[0]), str(r[1]))))
    path = os.environ.get("BENCH_JSON")
    if path and _bench_metrics:
        payload = {"schema": 1, "suite": BENCH_SUITE,
                   "metrics": dict(sorted(_bench_metrics.items()))}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nbench metrics -> {path} ({len(_bench_metrics)} cells)")
    if path and _bench_wall:
        sidecar = {"schema": 1, "suite": BENCH_SUITE,
                   "wall_s": dict(sorted(_bench_wall.items())),
                   "total_s": round(sum(_bench_wall.values()), 6)}
        with open(path + ".wall.json", "w") as fh:
            json.dump(sidecar, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench wall sidecar -> {path}.wall.json "
              f"({sidecar['total_s']:.1f} s simulator cost)")
