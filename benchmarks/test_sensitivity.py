"""Cost-model sensitivity analysis.

Absolute figure numbers are outputs of a calibrated model (DESIGN.md §2);
this module shows *which conclusions depend on which knobs*:

* checkpoint time vs. serialization bandwidth — the image-size term
  scales, the fixed per-pod term does not (so the paper's 100–300 ms
  envelope is bandwidth-calibration; the *sub-second* claim and the
  1/n image scaling are not);
* restart's network-restore share vs. fabric latency — reconnection is
  RTT-bound, so WAN-ish latencies inflate exactly the term the paper's
  two-thread/no-barrier design minimizes;
* the virtualization overhead vs. interposition cost — Figure 5's
  "negligible" verdict survives a 10× costlier interposition.
"""


from repro.cluster import Cluster, NodeSpec
from repro.core import Manager
from repro.harness import APPS
from repro.middleware.daemon import checkpoint_targets


def _ckpt_with_spec(spec: NodeSpec, fabric_latency: float = 100e-6):
    cluster = Cluster.build(4, spec=spec, seed=6)
    cluster.fabric.latency = fabric_latency
    manager = Manager.deploy(cluster)
    handle = APPS["PETSc"].launch_pods(cluster, 4, 1.0)
    out = {}

    def orchestrate():
        yield cluster.engine.sleep(0.4)
        targets = checkpoint_targets(handle, cluster)
        ckpt = yield from manager.checkpoint_task(targets)
        out["ckpt"] = ckpt
        for _n, pod_id, _u in targets:
            cluster.find_pod(pod_id).destroy()
        restart = yield from manager.restart_task(targets)
        out["restart"] = restart

    cluster.engine.spawn(orchestrate(), name="sens")
    cluster.engine.run(until=600.0)
    return out


def test_checkpoint_time_tracks_serialize_bandwidth(benchmark, report):
    def run():
        fast = _ckpt_with_spec(NodeSpec(memcpy_bandwidth=4e9))["ckpt"]
        slow = _ckpt_with_spec(NodeSpec(memcpy_bandwidth=0.5e9))["ckpt"]
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast.ok and slow.ok
    report("ablations", ("sensitivity", "memcpy 4 GB/s", "ckpt [ms]",
                         f"{fast.duration * 1000:.0f}"))
    report("ablations", ("sensitivity", "memcpy 0.5 GB/s", "ckpt [ms]",
                         f"{slow.duration * 1000:.0f}"))
    # the variable term scales ~8x; the fixed term keeps the ratio lower
    assert slow.duration > fast.duration * 1.5
    # but both stay subsecond: that claim is robust to calibration
    assert slow.duration < 1.0


def test_restart_network_share_tracks_fabric_latency(benchmark, report):
    def run():
        lan = _ckpt_with_spec(NodeSpec(), fabric_latency=100e-6)["restart"]
        wan = _ckpt_with_spec(NodeSpec(), fabric_latency=5e-3)["restart"]
        return lan, wan

    lan, wan = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lan.ok and wan.ok
    report("ablations", ("sensitivity", "fabric 100 µs", "net restore [ms]",
                         f"{lan.max_stat('t_network') * 1000:.1f}"))
    report("ablations", ("sensitivity", "fabric 5 ms", "net restore [ms]",
                         f"{wan.max_stat('t_network') * 1000:.1f}"))
    # reconnection is RTT-bound: latency inflates the network share
    assert wan.max_stat("t_network") > lan.max_stat("t_network") * 3


def test_fig5_verdict_survives_costlier_interposition(benchmark, report):
    """Even 10× the interposition cycles keeps overhead well under 1%."""
    import repro.pod.pod as podmod
    from repro.harness import run_fig5_row

    original = podmod.INTERPOSE_CYCLES

    def run():
        baseline = run_fig5_row("CPI", 2, scale=0.2)
        podmod.INTERPOSE_CYCLES = original * 10
        try:
            costly = run_fig5_row("CPI", 2, scale=0.2)
        finally:
            podmod.INTERPOSE_CYCLES = original
        return baseline, costly

    baseline, costly = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("sensitivity", "interpose 1x", "overhead %",
                         f"{baseline.overhead_pct:.5f}"))
    report("ablations", ("sensitivity", "interpose 10x", "overhead %",
                         f"{costly.overhead_pct:.5f}"))
    assert costly.overhead_pct > baseline.overhead_pct
    assert costly.overhead_pct < 1.0
