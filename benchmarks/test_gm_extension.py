"""§5 extension bench: checkpoint-restart over a kernel-bypass network.

Measures the coordinated checkpoint of a GM (Myrinet-style) application
— device-driver state (ports, credits, queues, uncredited sends) rides
with the image — and a migration between GM-equipped blades.
"""


from repro.cluster import Cluster
from repro.core import Manager, migrate
from repro.net.gm import GmDevice
from repro.vos import build_program

import tests.net.test_gm  # noqa: F401  (registers testapp.gm-* programs)


def _world():
    cluster = Cluster.build(4, seed=47)
    for i in range(4):
        GmDevice(cluster.node(i).kernel)
    return cluster, Manager.deploy(cluster)


def _launch(cluster, count):
    p_srv = cluster.create_pod(cluster.node(0), "gm-srv")
    cluster.create_pod(cluster.node(1), "gm-cli")
    cluster.node(0).kernel.spawn(
        build_program("testapp.gm-echo", port=2, count=count), pod_id="gm-srv")
    cluster.node(1).kernel.spawn(
        build_program("testapp.gm-client", peer_vip=p_srv.vip, peer_port=2,
                      port=2, count=count), pod_id="gm-cli")


def _client_acks(cluster):
    for node in cluster.nodes:
        for proc in node.kernel.procs.values():
            if proc.program.name == "testapp.gm-client" and proc.exit_code == 0:
                return proc.regs["acks"]
    return None


def test_gm_checkpoint_bench(benchmark, report):
    def run():
        cluster, manager = _world()
        _launch(cluster, count=200)
        holder = {}
        cluster.engine.schedule(0.005, lambda: holder.update(c=manager.checkpoint(
            [("blade0", "gm-srv", "mem"), ("blade1", "gm-cli", "mem")])))
        cluster.engine.run(until=300.0)
        result = holder["c"].finished.result
        assert result.ok and _client_acks(cluster) == 200
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("gm-extension", "snapshot", "checkpoint [ms]",
                         f"{result.duration * 1000:.0f}"))
    assert result.duration < 1.0


def test_gm_migration_bench(benchmark, report):
    def run():
        cluster, manager = _world()
        _launch(cluster, count=200)
        holder = {}

        def kick():
            holder["m"] = migrate(manager, [
                ("blade0", "gm-srv", "blade2"),
                ("blade1", "gm-cli", "blade3"),
            ])

        cluster.engine.schedule(0.005, kick)
        cluster.engine.run(until=300.0)
        mig = holder["m"].finished.result
        assert mig.ok and _client_acks(cluster) == 200
        return mig

    mig = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablations", ("gm-extension", "migrate", "total [ms]",
                         f"{mig.duration * 1000:.0f}"))
    assert mig.restart.ok
