"""Figure 6(a) — checkpoint times.

Ten evenly spaced snapshots per run; the reported time is Manager
invocation → every pod done (image written to memory).  Paper envelope:
all subsecond (100–300 ms), with the network-state share under 10 ms
(3–10% of the total) — the fact that motivates saving network state
*first*, overlapped with the Manager's meta-data sync.
"""

import pytest

from repro.harness import APPS, run_fig6_cell

from .conftest import SCALE

CELLS = [(app, n) for app, spec in APPS.items() for n in spec.node_counts]


@pytest.mark.parametrize("app,nodes", CELLS, ids=[f"{a}-{n}" for a, n in CELLS])
def test_fig6a_cell(benchmark, report, bench_json, app, nodes):
    cell = benchmark.pedantic(run_fig6_cell, args=(app, nodes),
                              kwargs={"scale": SCALE, "n_checkpoints": 10},
                              rounds=1, iterations=1)
    assert cell.checkpoint_times, "no checkpoint completed during the run"
    share = 100.0 * cell.mean_network_ckpt / cell.mean_checkpoint
    benchmark.extra_info.update(
        mean_ckpt_s=cell.mean_checkpoint,
        mean_net_ckpt_s=cell.mean_network_ckpt,
        n_checkpoints=len(cell.checkpoint_times))
    bench_json(f"fig6a/{app}-{nodes}",
               mean_ckpt_ms=cell.mean_checkpoint * 1000,
               net_ckpt_ms=cell.mean_network_ckpt * 1000,
               n_checkpoints=len(cell.checkpoint_times))
    report("fig6a", (app, nodes, len(cell.checkpoint_times),
                     f"{cell.mean_checkpoint * 1000:.0f}",
                     f"{cell.mean_network_ckpt * 1000:.2f}",
                     f"{share:.1f}"))
    # the paper's envelope
    assert cell.mean_checkpoint < 1.0, "checkpoints must be subsecond"
    assert cell.mean_network_ckpt < 0.010, "network share must be < 10 ms"
