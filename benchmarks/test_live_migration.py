"""Live migration — downtime vs pre-copy rounds.

Not a paper figure: the downtime study the paper's direct-migration
section motivates.  A 256 MB pod rewriting 40 MB/s of its working set
moves between blades under increasing pre-copy round caps; cap 0 is
plain stop-and-copy.  The claims:

* downtime falls monotonically (within tolerance) as the cap rises,
* with enough rounds the outage is at least 5× smaller than the whole
  migration (the live-migration acceptance criterion),
* total migration time grows only modestly — pre-copy trades a bounded
  amount of extra transfer for a much smaller outage.
"""

import pytest

from repro.harness import run_migration_cell

from .conftest import SCALE  # noqa: F401  (cells run at fixed paper scale)

CAPS = (0, 1, 2, 4, 8)


@pytest.mark.parametrize("cap", CAPS, ids=[f"rounds-{c}" for c in CAPS])
def test_downtime_vs_rounds(benchmark, report, bench_json, cap):
    cell = benchmark.pedantic(run_migration_cell, args=(cap,),
                              rounds=1, iterations=1)
    benchmark.extra_info.update(
        downtime_s=cell.downtime, total_s=cell.total_time,
        rounds_run=cell.rounds_run, precopy_bytes=cell.precopy_bytes)
    bench_json(f"livemig/rounds-{cap}",
               downtime_ms=cell.downtime * 1000,
               total_ms=cell.total_time * 1000,
               rounds_run=cell.rounds_run,
               precopy_mb=cell.precopy_bytes / 1e6)
    report("livemig", (cap, cell.rounds_run,
                       f"{cell.downtime * 1000:.1f}",
                       f"{cell.total_time * 1000:.0f}",
                       f"{100 * cell.downtime_ratio:.1f}",
                       cell.bailout or "-"))
    stop_and_copy = run_migration_cell(0)
    if cap == 0:
        # stop-and-copy: the whole migration is the outage
        assert cell.downtime == pytest.approx(cell.total_time, rel=0.01)
    else:
        assert cell.rounds_run >= 1
        assert cell.downtime < stop_and_copy.downtime
    if cap >= 8:
        assert cell.downtime * 5 <= cell.total_time, \
            (cell.downtime, cell.total_time)
