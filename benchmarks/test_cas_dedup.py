"""Content-addressed store — dedup ratio, cross-pod sharing, GC reclaim.

Not a paper figure: the CAS study.  The generational writer workload
(2 pods × 64 MB ballast, 4 MB/s writes, 8 epochs) is checkpointed under
each sink configuration, and the fleet evacuation world is checkpointed
fleet-wide through the store.  The claims:

* the CAS modes store ≥ 5× fewer bytes than the full-image file sink on
  the generational workload, with every restore byte-identical to the
  in-memory ground truth,
* the fleet world shows measurable *cross-pod* dedup — bytes one pod
  stored that every later pod references instead of re-writing — and a
  SAN footprint far below the file-mode baseline.
"""

import pytest

from repro.harness import CAS_MODES, run_cas_cell

from .conftest import SCALE  # noqa: F401  (cells run at fixed workload scale)

_cells = {}


@pytest.mark.parametrize("mode", list(CAS_MODES), ids=list(CAS_MODES))
def test_cas_generational_dedup(benchmark, report, bench_json, mode):
    cell = benchmark.pedantic(run_cas_cell, args=(mode,), rounds=1,
                              iterations=1)
    _cells[mode] = cell
    benchmark.extra_info.update(
        logical_mb=cell.logical_total / 1e6,
        stored_mb=cell.stored_total / 1e6,
        dedup_ratio=cell.dedup_ratio)
    bench_json(f"cas/{mode}",
               logical_mb=cell.logical_total / 1e6,
               stored_mb=cell.stored_total / 1e6,
               dedup_ratio=cell.dedup_ratio,
               gc_reclaimed_mb=cell.gc_reclaimed_bytes / 1e6,
               ckpt_ms=cell.mean_checkpoint * 1000)
    report("cas", (mode,
                   f"{cell.logical_total / 1e6:.1f}",
                   f"{cell.stored_total / 1e6:.1f}",
                   f"{cell.dedup_ratio:.1f}x",
                   f"{cell.gc_reclaimed_bytes / 1e6:.1f}",
                   "ok" if cell.restore_ok else "BROKEN"))
    assert cell.restore_ok
    full = _cells.get("file-full")
    if mode.startswith("cas") and full is not None:
        # acceptance: ≥ 5× fewer stored bytes than full images
        assert cell.stored_total * 5 <= full.stored_total


def test_cas_fleet_cross_pod_dedup(benchmark, report, bench_json):
    """Fleet-wide checkpoint of the evacuation world through the CAS."""
    from repro.fleet import run_cas_fleet_demo
    out = benchmark.pedantic(run_cas_fleet_demo, rounds=1, iterations=1)
    benchmark.extra_info.update(
        stored_mb=out["stored_bytes"] / 1e6,
        cross_pod_dup_mb=out["cross_pod_dup_bytes"] / 1e6,
        dedup_ratio=out["dedup_ratio"])
    bench_json("cas/fleet",
               n_pods=out["n_pods"],
               logical_mb=out["logical_bytes"] / 1e6,
               stored_mb=out["stored_bytes"] / 1e6,
               cross_pod_dup_mb=out["cross_pod_dup_bytes"] / 1e6,
               dedup_ratio=out["dedup_ratio"],
               san_file_mb=out["san_file_bytes"] / 1e6)
    report("cas", ("fleet",
                   f"{out['logical_bytes'] / 1e6:.1f}",
                   f"{out['stored_bytes'] / 1e6:.1f}",
                   f"{out['dedup_ratio']:.1f}x",
                   "-",
                   "ok" if out["restore_ok"] else "BROKEN"))
    assert out["restore_ok"]
    assert out["cross_pod_dup_bytes"] > 0
    # the fleet SAN footprint shrinks ≥ 5× against the file baseline
    assert out["stored_bytes"] * 5 <= out["san_file_bytes"]
