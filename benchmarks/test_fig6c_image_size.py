"""Figure 6(c) — checkpoint image sizes.

The average over checkpoints of the *largest* pod image (pods proceed in
parallel, so the largest drives the time budget).  Paper shape: CPI
16→7 MB, PETSc 145→24 MB, BT 340→35 MB as nodes go 1→16 (roughly 1/n
scaling of the split working set), POV-Ray ≈10 MB flat; and network
state is always orders of magnitude smaller than application state.
"""

import pytest

from repro.harness import APPS, run_fig6_cell

from .conftest import SCALE

#: the paper's reported (app, nodes) → MB points, for shape comparison.
PAPER_SIZES = {
    ("CPI", 1): 16, ("CPI", 16): 7,
    ("PETSc", 1): 145, ("PETSc", 16): 24,
    ("BT/NAS", 1): 340, ("BT/NAS", 16): 35,
}

CELLS = [(app, n) for app, spec in APPS.items() for n in spec.node_counts]


@pytest.mark.parametrize("app,nodes", CELLS, ids=[f"{a}-{n}" for a, n in CELLS])
def test_fig6c_cell(benchmark, report, app, nodes):
    cell = benchmark.pedantic(run_fig6_cell, args=(app, nodes),
                              kwargs={"scale": SCALE, "n_checkpoints": 5},
                              rounds=1, iterations=1)
    assert cell.image_sizes
    mb = cell.mean_image_size / 1e6
    benchmark.extra_info.update(image_mb=mb, netstate_bytes=cell.max_netstate)
    report("fig6c", (app, nodes, f"{mb:.1f}", f"{cell.max_netstate / 1000:.1f}"))
    paper = PAPER_SIZES.get((app, nodes))
    if paper is not None:
        assert mb == pytest.approx(paper, rel=0.25), \
            f"image size {mb:.1f} MB strays from the paper's {paper} MB"
    # application state dominates network state by orders of magnitude
    assert cell.mean_image_size > 50 * max(cell.max_netstate, 1)


@pytest.mark.parametrize("app", ["CPI", "PETSc", "BT/NAS"])
def test_fig6c_scaling_down(benchmark, report, app):
    """Largest-pod image size must shrink as the cluster grows."""
    spec = APPS[app]

    def run():
        first = run_fig6_cell(app, spec.node_counts[0], scale=SCALE, n_checkpoints=3)
        last = run_fig6_cell(app, spec.node_counts[-1], scale=SCALE, n_checkpoints=3)
        return first, last

    first, last = benchmark.pedantic(run, rounds=1, iterations=1)
    # CPI's base footprint dominates (paper ratio 16/7 ≈ 2.3); the grid
    # apps split much larger working sets (ratios of ~6–10)
    floor = 2.0 if app == "CPI" else 3.0
    assert last.mean_image_size < first.mean_image_size / floor


def test_fig6c_povray_roughly_constant(benchmark):
    def run():
        return (run_fig6_cell("POV-Ray", 2, scale=SCALE, n_checkpoints=3),
                run_fig6_cell("POV-Ray", 16, scale=SCALE, n_checkpoints=3))

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = large.mean_image_size / small.mean_image_size
    assert 0.7 < ratio < 1.4  # ≈ constant ~10 MB per worker
