"""Figure 6(b) — restart times.

Restart from an image taken in the middle of the run (the conservative
point: peak state), image preloaded in memory, same blades.  Paper
envelope: subsecond (200–700 ms), longer than checkpoint because of the
extra connection-reconstruction work; the network-restore share runs
10–200 ms.
"""

import pytest

from repro.harness import APPS, run_fig6b_cell

from .conftest import SCALE

CELLS = [(app, n) for app, spec in APPS.items() for n in spec.node_counts]


@pytest.mark.parametrize("app,nodes", CELLS, ids=[f"{a}-{n}" for a, n in CELLS])
def test_fig6b_cell(benchmark, report, app, nodes):
    cell = benchmark.pedantic(run_fig6b_cell, args=(app, nodes),
                              kwargs={"scale": SCALE}, rounds=1, iterations=1)
    assert cell.restart_time is not None, "no restart was performed"
    benchmark.extra_info.update(
        restart_s=cell.restart_time, net_restore_s=cell.network_restart_time)
    report("fig6b", (app, nodes, f"{cell.restart_time * 1000:.0f}",
                     f"{cell.network_restart_time * 1000:.1f}"))
    # the paper's envelope and ordering claims
    assert cell.restart_time < 1.5, "restarts must be around a second or less"
    assert cell.restart_time > cell.checkpoint_times[0] * 0.8, \
        "restart should not be dramatically faster than checkpoint"
    assert cell.network_restart_time < 0.25
