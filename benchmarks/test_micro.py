"""Substrate micro-benchmarks (real wall-clock, for regression tracking).

Unlike the figure benches (which report *simulated* durations), these
measure the simulator itself: event throughput, TCP goodput in simulated
bytes per real second, codec throughput, and checkpoint capture rate.
They guard against performance regressions that would make the figure
sweeps painful.
"""


from repro.core import codec
from repro.sim import Engine


def test_engine_event_throughput(benchmark):
    def run():
        engine = Engine(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_tcp_transfer_throughput(benchmark):
    from repro.net import Fabric, NetStack
    from repro.net.addr import Endpoint
    from repro.vos import Kernel

    def run():
        engine = Engine(seed=2)
        fabric = Fabric(engine)
        ka = Kernel(engine, "a")
        sa = NetStack(ka, fabric, "10.0.0.1")
        kb = Kernel(engine, "b")
        sb = NetStack(kb, fabric, "10.0.0.2")
        a = sa.create_socket("tcp")
        a.local = Endpoint("10.0.0.1", 1)
        sa.register_established(a, Endpoint("10.0.0.2", 2))
        b = sb.create_socket("tcp")
        b.local = Endpoint("10.0.0.2", 2)
        sb.register_established(b, Endpoint("10.0.0.1", 1))
        for s in (a, b):
            s.conn.state = "established"
            s.conn.pcb.snd_una = s.conn.pcb.snd_nxt = s.conn.pcb.rcv_nxt = 1001
        b.options["SO_RCVBUF"] = 4 * 2**20  # nobody drains: open the window
        for _ in range(20):
            a.conn.app_write(b"x" * 65536)
        engine.run(until=60.0)
        b.conn.process_backlog()
        return len(b.conn.recv_q)

    assert benchmark(run) == 20 * 65536


def test_codec_throughput(benchmark):
    import numpy as np

    payload = {
        "regs": {f"r{i}": float(i) for i in range(200)},
        "queues": [b"q" * 4096] * 16,
        "arr": np.arange(8192, dtype=np.float64),
    }

    def run():
        return codec.decode(codec.encode(payload))

    out = benchmark(run)
    assert len(out["queues"]) == 16


def test_checkpoint_capture_rate(benchmark):
    """Real time per coordinated checkpoint of a 4-pod application."""
    from repro.core import Manager
    from repro.harness import APPS, build_cluster
    from repro.middleware.daemon import checkpoint_targets

    def run():
        cluster = build_cluster(4, seed=3)
        manager = Manager.deploy(cluster)
        handle = APPS["CPI"].launch_pods(cluster, 4, 0.3)
        out = {}

        def orchestrate():
            yield cluster.engine.sleep(0.3)
            result = yield from manager.checkpoint_task(
                checkpoint_targets(handle, cluster))
            out["ok"] = result.ok

        cluster.engine.spawn(orchestrate(), name="o")
        cluster.engine.run(until=60.0)
        return out["ok"]

    assert benchmark(run) is True
