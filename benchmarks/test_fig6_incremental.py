"""Incremental checkpointing on the Figure 6(c) configurations.

Acceptance criterion of the pipeline refactor: with ``--incremental``
(the delta filter), the mean steady-state image size over epochs 1–9 of
the 10-checkpoint protocol drops by at least 40% versus the epoch-0 full
image on the PETSc and BT/NAS configurations, and a restart from the
delta chain still produces checksum-identical application results (the
harness verifies the answer and raises otherwise).
"""

import pytest

from repro.harness import run_fig6_cell, run_fig6b_cell

from .conftest import SCALE

DELTA = [{"name": "delta"}]


@pytest.mark.parametrize("app,nodes", [("PETSc", 1), ("PETSc", 4),
                                       ("BT/NAS", 1), ("BT/NAS", 4)],
                         ids=["PETSc-1", "PETSc-4", "BT-1", "BT-4"])
def test_incremental_steady_state_drop(benchmark, report, app, nodes):
    cell = benchmark.pedantic(run_fig6_cell, args=(app, nodes),
                              kwargs={"scale": SCALE, "n_checkpoints": 10,
                                      "filters": DELTA},
                              rounds=1, iterations=1)
    assert len(cell.image_sizes) == 10
    full = cell.epoch0_image_size
    steady = cell.steady_state_image_size
    drop = 100.0 * (1.0 - steady / full)
    benchmark.extra_info.update(epoch0_mb=full / 1e6, steady_mb=steady / 1e6,
                                drop_pct=drop)
    report("ablations", ("incremental", f"{app} n={nodes}",
                         "steady-state drop", f"{drop:.0f}%"))
    assert drop >= 40.0, (full, steady)
    # the raw (restored) size never shrinks — deltas are a write-path win
    assert min(cell.raw_image_sizes) > 0.9 * full


@pytest.mark.parametrize("app", ["PETSc", "BT/NAS"])
def test_restart_from_delta_chain_is_checksum_identical(benchmark, report, app):
    """Three delta epochs, kill, reassemble the chain, verify the answer
    (run_fig6b_cell raises unless the application's checksum matches)."""
    cell = benchmark.pedantic(run_fig6b_cell, args=(app, 4),
                              kwargs={"scale": SCALE, "filters": DELTA,
                                      "n_checkpoints": 3},
                              rounds=1, iterations=1)
    assert cell.restart_time is not None
    assert len(cell.image_sizes) == 3
    assert cell.image_sizes[-1] < cell.image_sizes[0]
    report("ablations", ("incremental", f"{app} chain restart", "restart [ms]",
                         f"{cell.restart_time * 1000:.0f}"))
